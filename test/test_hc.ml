(* The hash-consed store under adversarial test: the differential
   fuzzing battery of PR 9.

   The contract has three layers, and each gets its own suite below.

   Unique table: interning is idempotent, structurally-equal and
   α-equivalent queries share an id, distinct ids imply structurally
   distinct canonical forms, and source locations never reach the keys
   (the PR 3 loc-equality invariant, plus the PR 5 full-arity hashing
   discipline, would both fail silently — as duplicate nodes — if
   violated; the tests here make them loud).

   Compute caches: every containment / rewriting / ptype / pipeline /
   judge entry point must be observationally identical under
   [Hc.Interned] and [Hc.Structural], over the zoo, over seeded random
   theories and queries, and — the sharp edge — at every deterministic
   fuel-trap point, since a memo hit that skipped a budget charge would
   shift trip points between modes.  The memo-coherence replay then
   re-derives every cached verdict with the fresh structural oracle.

   Observability: hits never exceed lookups, identical workloads from a
   reset store move the hc counters identically, tracing on/off leaves
   them inert, and the serve eviction hook resets the store without any
   verdict drift on the rebuilt session. *)

open Bddfc_budget
open Bddfc_logic
open Bddfc_structure
open Bddfc_chase
open Bddfc_hom
open Bddfc_ptp
open Bddfc_finitemodel
open Bddfc_workload
module Rewrite = Bddfc_rewriting.Rewrite
module Obs = Bddfc_obs.Obs
module M = Obs.Metrics
module T = Obs.Trace
module Json = Obs.Json
module Server = Bddfc_serve.Server

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f
let cq = Alcotest.testable Cq.pp Cq.equal
let th src = Parser.parse_theory src
let db src = Instance.of_atoms (Parser.parse_atoms src)

(* ----------------------------------------------------------------- *)
(* A seeded random-CQ generator over the Gen.random_binary_theory     *)
(* vocabulary, so fuzzed queries exercise the same signature as the   *)
(* fuzzed theories.                                                   *)
(* ----------------------------------------------------------------- *)

let binaries = [| "e"; "r"; "f" |]
let unaries = [| "p"; "q" |]
let consts = [| "a"; "b"; "c" |]
let var_pool = [| "X"; "Y"; "Z"; "U"; "V"; "W" |]

let random_term st =
  if Random.State.int st 4 = 0 then
    Term.cst consts.(Random.State.int st (Array.length consts))
  else Term.var var_pool.(Random.State.int st (Array.length var_pool))

let random_atom st =
  if Random.State.bool st then
    Atom.app binaries.(Random.State.int st (Array.length binaries))
      [ random_term st; random_term st ]
  else Atom.app unaries.(Random.State.int st (Array.length unaries))
      [ random_term st ]

let random_cq st =
  let body = List.init (1 + Random.State.int st 7) (fun _ -> random_atom st) in
  let vars = Cq.SS.elements (Atom.vars_of_atoms body) in
  let n_ans = Random.State.int st (min 3 (List.length vars) + 1) in
  let answer = List.filteri (fun i _ -> i < n_ans) vars in
  Cq.make ~answer body

(* An explicit α-variant: every variable prefixed, order preserved. *)
let alpha_variant q =
  let ren v = Term.Var ("Renamed_" ^ v) in
  let body =
    List.map
      (Atom.map_terms (function Term.Var v -> ren v | c -> c))
      (Cq.body q)
  in
  Cq.make ~answer:(List.map (fun v -> "Renamed_" ^ v) (Cq.answer q)) body

(* ----------------------------------------------------------------- *)
(* Unique-table properties                                            *)
(* ----------------------------------------------------------------- *)

let test_intern_idempotent () =
  for seed = 0 to 99 do
    let st = Random.State.make [| seed; 11 |] in
    let q = random_cq st in
    let id1 = Hc.intern q in
    let id2 = Hc.intern q in
    check Alcotest.int "re-interning is the identity" id1 id2;
    (* the canonical representative interns to its own id *)
    check Alcotest.int "node round-trips" id1 (Hc.intern (Hc.node id1));
    (* the canonical form is α-equivalent to the input: same shape *)
    let canon, _ren = Hc.canonicalize q in
    check Alcotest.int "canonical form keeps the atom count"
      (Cq.num_atoms q) (Cq.num_atoms canon);
    check Alcotest.int "canonical form keeps the answer arity"
      (List.length (Cq.answer q)) (List.length (Cq.answer canon))
  done

let test_alpha_equivalent_same_node () =
  for seed = 0 to 99 do
    let st = Random.State.make [| seed; 23 |] in
    let q = random_cq st in
    let renamed, _ = Cq.rename_apart q in
    check Alcotest.int "rename_apart lands on the same node" (Hc.intern q)
      (Hc.intern renamed);
    check Alcotest.int "prefix renaming lands on the same node"
      (Hc.intern q)
      (Hc.intern (alpha_variant q));
    check Alcotest.bool "same reports the sharing" true (Hc.same q renamed)
  done

let test_distinct_ids_distinct_structure () =
  for seed = 0 to 99 do
    let st = Random.State.make [| seed; 37 |] in
    let q1 = random_cq st in
    let q2 = random_cq st in
    let c1 = fst (Hc.canonicalize q1) in
    let c2 = fst (Hc.canonicalize q2) in
    if Hc.intern q1 = Hc.intern q2 then
      check Alcotest.bool "shared id means equal canonical forms" true
        (Cq.equal c1 c2)
    else
      check Alcotest.bool "distinct ids mean distinct canonical forms" false
        (Cq.equal c1 c2)
  done

(* The PR 3 invariant, extended to the interner: [Atom.equal] ignores
   locations, so the unique-table hash must too — a loc-sensitive hash
   would file equal atoms under different buckets and silently issue
   duplicate ids for equal queries. *)
let test_locations_never_reach_the_keys () =
  let base = Atom.app "e" [ Term.var "X"; Term.var "Y" ] in
  let a1 = Atom.with_loc (Loc.make ~line:1 ~col:1) base in
  let a2 = Atom.with_loc (Loc.make ~line:99 ~col:42) base in
  check Alcotest.int "atom ids ignore locations" (Hc.intern_atom a1)
    (Hc.intern_atom a2);
  check Alcotest.int "cq ids ignore locations"
    (Hc.intern (Cq.make ~answer:[ "X" ] [ a1 ]))
    (Hc.intern (Cq.make ~answer:[ "X" ] [ a2 ]));
  (* and through the parser: the same query at different source
     positions carries different locs but interns identically *)
  let p1 = Parser.parse_query "? e(X,Y), r(Y,Z)." in
  let p2 = Parser.parse_query "\n\n      ? e(X,Y),    r(Y,Z)." in
  let loc_of q = Atom.loc (List.hd (Cq.body q)) in
  check Alcotest.bool "parser gave distinct locations" false
    (Loc.line (loc_of p1) = Loc.line (loc_of p2)
    && Loc.col (loc_of p1) = Loc.col (loc_of p2));
  check Alcotest.int "parsed queries share a node" (Hc.intern p1)
    (Hc.intern p2)

(* The PR 5 [Fact.hash] regression, mirrored: the atom hash must fold
   over every argument.  Wide atoms differing only in a late argument
   must intern to distinct, stable ids. *)
let test_full_arity_hashing () =
  let wide i =
    Atom.app "w"
      (List.init 11 (fun k -> Term.var ("P" ^ string_of_int k))
      @ [ Term.cst ("tail" ^ string_of_int i) ])
  in
  let ids = List.init 64 (fun i -> Hc.intern_atom (wide i)) in
  check Alcotest.int "late-argument variation keeps atoms distinct" 64
    (List.length (List.sort_uniq compare ids));
  check
    Alcotest.(list int)
    "re-interning is stable" ids
    (List.init 64 (fun i -> Hc.intern_atom (wide i)))

(* ----------------------------------------------------------------- *)
(* Containment: the fuzzing battery proper                            *)
(* ----------------------------------------------------------------- *)

(* A claimed witness is checked, not trusted: it must map every atom of
   [general]'s body into [specific]'s body and send answer variables to
   answer variables positionally. *)
let witness_valid ~general ~specific w =
  List.for_all
    (fun a ->
      let a' = Subst.apply_atom w a in
      List.exists (Atom.equal a') (Cq.body specific))
    (Cq.body general)
  && List.for_all2
       (fun xg xs ->
         match Subst.find_opt xg w with
         | Some (Term.Var v) -> String.equal v xs
         | Some (Term.Cst _) | None -> false)
       (Cq.answer general) (Cq.answer specific)

let check_pair_agrees name q1 q2 =
  List.iter
    (fun (general, specific) ->
      let expected = Containment.subsumes ~hc:Hc.Structural ~general specific in
      check Alcotest.bool (name ^ ": subsumes verdicts agree") expected
        (Containment.subsumes ~hc:Hc.Interned ~general specific);
      List.iter
        (fun hc ->
          let verdict, w = Containment.subsumes_witness ~hc ~general specific in
          check Alcotest.bool
            (name ^ ": witness verdict matches subsumes")
            expected verdict;
          match (verdict, w) with
          | true, Some w ->
              check Alcotest.bool
                (name ^ ": witness is a homomorphism")
                true
                (witness_valid ~general ~specific w)
          | true, None -> Alcotest.failf "%s: positive verdict, no witness" name
          | false, Some _ -> Alcotest.failf "%s: negative verdict with witness" name
          | false, None -> ())
        [ Hc.Structural; Hc.Interned ])
    [ (q1, q2); (q2, q1); (q1, q1) ];
  check Alcotest.bool
    (name ^ ": equivalent agrees")
    (Containment.equivalent ~hc:Hc.Structural q1 q2)
    (Containment.equivalent ~hc:Hc.Interned q1 q2);
  check cq
    (name ^ ": minimize agrees")
    (Containment.minimize ~hc:Hc.Structural q1)
    (Containment.minimize ~hc:Hc.Interned q1)

let test_fuzz_containment () =
  (* half the seeds run against a warm store, half after a reset: the
     verdicts may come from the memo or from a fresh computation, and
     must not care which *)
  for seed = 0 to 239 do
    if seed mod 2 = 0 then Hc.reset ();
    let st = Random.State.make [| seed; 101 |] in
    let q1 = random_cq st in
    let q2 = random_cq st in
    check_pair_agrees (Printf.sprintf "seed %d" seed) q1 q2;
    (* α-variants must hit the same memo lines and the same verdicts *)
    check_pair_agrees
      (Printf.sprintf "seed %d (alpha)" seed)
      (alpha_variant q1) q2
  done

let test_fuzz_prune_ucq () =
  for seed = 0 to 59 do
    let st = Random.State.make [| seed; 211 |] in
    let ucq = List.init 4 (fun _ -> random_cq st) in
    (* prune_ucq requires uniform answer arity: make them boolean *)
    let ucq = List.map (fun q -> Cq.boolean (Cq.body q)) ucq in
    check
      Alcotest.(list cq)
      (Printf.sprintf "seed %d: pruned UCQs agree" seed)
      (Containment.prune_ucq ~hc:Hc.Structural ucq)
      (Containment.prune_ucq ~hc:Hc.Interned ucq)
  done

(* Replay every cached verdict against the fresh structural oracle: the
   memo's id-pair keying is sound only because verdicts are computed on
   canonical representatives, and this is where that argument is checked
   rather than believed. *)
let test_memo_coherence_replay () =
  Hc.reset ();
  for seed = 0 to 59 do
    let st = Random.State.make [| seed; 307 |] in
    let q1 = random_cq st in
    let q2 = random_cq st in
    ignore (Containment.subsumes ~hc:Hc.Interned ~general:q1 q2);
    ignore (Containment.equivalent ~hc:Hc.Interned q1 q2);
    ignore (Containment.minimize ~hc:Hc.Interned q1)
  done;
  let entries = Hc.memo_entries () in
  check Alcotest.bool "the workload populated the memo" true
    (List.length entries > 50);
  List.iter
    (fun ((gid, sid), (verdict, w)) ->
      let general = Hc.node gid in
      let specific = Hc.node sid in
      check Alcotest.bool
        (Printf.sprintf "entry (%d,%d) replays against the oracle" gid sid)
        (Containment.subsumes ~hc:Hc.Structural ~general specific)
        verdict;
      match (verdict, w) with
      | true, Some w ->
          check Alcotest.bool
            (Printf.sprintf "entry (%d,%d) witness is a homomorphism" gid sid)
            true
            (witness_valid ~general ~specific w)
      | true, None ->
          Alcotest.failf "entry (%d,%d): positive verdict cached without witness"
            gid sid
      | false, Some _ ->
          Alcotest.failf "entry (%d,%d): negative verdict cached with witness"
            gid sid
      | false, None -> ())
    entries

(* ----------------------------------------------------------------- *)
(* Rewriting: same UCQs, same completeness, same trip points          *)
(* ----------------------------------------------------------------- *)

(* Rewriting draws on the global fresh-name supply, so the two runs are
   pinned to the same names by resetting it; only then is byte equality
   of the UCQs the right oracle. *)
let reproducible go hc =
  Term.reset_fresh_counter ();
  go hc

let check_rewrite_agrees name (a : Rewrite.result) (b : Rewrite.result) =
  check Alcotest.(list cq) (name ^ ": ucq") a.Rewrite.ucq b.Rewrite.ucq;
  check Alcotest.bool (name ^ ": complete") a.Rewrite.complete b.Rewrite.complete;
  check Alcotest.int (name ^ ": generated") a.Rewrite.generated b.Rewrite.generated;
  check Alcotest.int (name ^ ": kept") a.Rewrite.kept b.Rewrite.kept;
  check
    Alcotest.(option string)
    (name ^ ": tripped")
    (Option.map Budget.resource_name a.Rewrite.tripped)
    (Option.map Budget.resource_name b.Rewrite.tripped)

let test_rewrite_zoo_differential () =
  List.iter
    (fun (e : Zoo.entry) ->
      if Theory.all_single_head e.Zoo.theory then begin
        let go hc =
          Rewrite.rewrite ~hc ~max_disjuncts:60 ~max_steps:400 e.Zoo.theory
            e.Zoo.query
        in
        check_rewrite_agrees e.Zoo.name (reproducible go Hc.Structural)
          (reproducible go Hc.Interned);
        let ka = Rewrite.kappa ~hc:Hc.Structural e.Zoo.theory in
        let kb = Rewrite.kappa ~hc:Hc.Interned e.Zoo.theory in
        check Alcotest.int (e.Zoo.name ^ ": kappa") ka.Rewrite.kappa
          kb.Rewrite.kappa;
        check Alcotest.bool
          (e.Zoo.name ^ ": kappa complete")
          ka.Rewrite.all_complete kb.Rewrite.all_complete
      end)
    Zoo.all

let test_rewrite_random_differential () =
  for seed = 0 to 59 do
    let theory = Gen.random_binary_theory ~rules:4 ~seed () in
    let st = Random.State.make [| seed; 401 |] in
    let query = random_cq st in
    let go hc = Rewrite.rewrite ~hc ~max_disjuncts:30 ~max_steps:150 theory query in
    check_rewrite_agrees
      (Printf.sprintf "seed %d" seed)
      (reproducible go Hc.Structural)
      (reproducible go Hc.Interned)
  done

(* Fuel traps: the interned path must charge the budget exactly where
   the structural path does — a memo hit that skipped a charge would
   shift the trip point and diverge here. *)
let test_rewrite_fuel_trap_differential () =
  let theory = th "e(X,Y) -> e(Y,X). e(X,Y), e(Y,Z) -> e(X,Z)." in
  let query = Parser.parse_query "? e(X,Y)." in
  List.iter
    (fun after ->
      let go hc =
        Rewrite.rewrite
          ~budget:(Budget.with_fuel_trap ~after (Budget.v ()))
          ~hc ~max_disjuncts:40 ~max_steps:200 theory query
      in
      check_rewrite_agrees
        (Printf.sprintf "trap %d" after)
        (reproducible go Hc.Structural)
        (reproducible go Hc.Interned))
    [ 0; 1; 2; 3; 5; 8; 13; 21; 55 ]

let test_rewrite_expired_deadline_differential () =
  (* an already-expired deadline is the one deterministic point of the
     wall-clock resource: both modes must trip it identically *)
  let theory = th "e(X,Y) -> e(Y,X). e(X,Y), e(Y,Z) -> e(X,Z)." in
  let query = Parser.parse_query "? e(X,Y)." in
  let go hc =
    Rewrite.rewrite
      ~budget:(Budget.v ~deadline_s:(-1.0) ())
      ~hc ~max_disjuncts:40 ~max_steps:200 theory query
  in
  check_rewrite_agrees "deadline 0" (reproducible go Hc.Structural)
    (reproducible go Hc.Interned)

(* ----------------------------------------------------------------- *)
(* Ptypes and Converge: the evaluation memo                           *)
(* ----------------------------------------------------------------- *)

let test_ptypes_differential () =
  for seed = 0 to 14 do
    let theory = Gen.random_binary_theory ~rules:3 ~seed () in
    let base = Gen.random_instance ~facts:4 ~seed:(seed + 500) () in
    let r = Chase.run ~max_rounds:2 ~max_elements:24 theory base in
    let inst = r.Chase.instance in
    (match Instance.elements inst with
    | d :: e :: _ ->
        List.iter
          (fun vars ->
            check Alcotest.bool
              (Printf.sprintf "seed %d: ptp_leq vars=%d" seed vars)
              (Ptypes.ptp_leq ~hc:Hc.Structural ~vars inst (Some d) inst
                 (Some e))
              (Ptypes.ptp_leq ~hc:Hc.Interned ~vars inst (Some d) inst (Some e));
            check Alcotest.bool
              (Printf.sprintf "seed %d: equiv vars=%d" seed vars)
              (Ptypes.equiv ~hc:Hc.Structural ~vars inst d e)
              (Ptypes.equiv ~hc:Hc.Interned ~vars inst d e))
          [ 1; 2 ]
    | _ -> ());
    let ca, na = Ptypes.classes ~hc:Hc.Structural ~vars:2 inst in
    let cb, nb = Ptypes.classes ~hc:Hc.Interned ~vars:2 inst in
    check Alcotest.int (Printf.sprintf "seed %d: class count" seed) na nb;
    check
      Alcotest.(array int)
      (Printf.sprintf "seed %d: class assignment" seed)
      ca cb
  done

let test_converge_differential () =
  let inst = Gen.cycle ~len:4 () in
  let coloring = Coloring.natural ~m:2 inst in
  let p = Atom.pred (Atom.app "e" [ Term.var "X"; Term.var "Y" ]) in
  let queries = Converge.default_queries [ p ] in
  check Alcotest.bool "the default family is non-empty" true (queries <> []);
  let go hc = Converge.sequence ~hc ~max_n:3 coloring queries in
  let a = go Hc.Structural in
  let b = go Hc.Interned in
  List.iter2
    (fun (pa : Converge.point) (pb : Converge.point) ->
      check Alcotest.int "n" pa.Converge.n pb.Converge.n;
      check Alcotest.int "quotient size" pa.Converge.quotient_size
        pb.Converge.quotient_size;
      check
        Alcotest.(list (pair cq string))
        (Printf.sprintf "gained at n=%d" pa.Converge.n)
        pa.Converge.gained pb.Converge.gained)
    a.Converge.points b.Converge.points

(* ----------------------------------------------------------------- *)
(* Pipeline and judge: end-to-end differential                        *)
(* ----------------------------------------------------------------- *)

let small_params hc budget =
  {
    Pipeline.default_params with
    Pipeline.chase_depth = 8;
    depth_growth = [ 1 ];
    n_schedule = [ 1; 2; 3 ];
    rewrite_max_disjuncts = 40;
    rewrite_max_steps = 300;
    budget;
    hc;
  }

let pipeline_sig = function
  | Pipeline.Query_entailed d -> Printf.sprintf "certain:%d" d
  | Pipeline.Model (cert, stats) ->
      Printf.sprintf "model:%d:n=%s"
        (Instance.num_elements cert.Certificate.model)
        (match stats.Pipeline.n_used with
        | Some n -> string_of_int n
        | None -> "-")
  | Pipeline.Unknown (why, stats) ->
      Printf.sprintf "unknown:%s:tripped=%s" why
        (match stats.Pipeline.tripped with
        | Some r -> Budget.resource_name r
        | None -> "-")

let judge_sig (v : Judge.verdict) =
  let evidence =
    match v.Judge.evidence with
    | Judge.Certain d -> Printf.sprintf "certain:%d" d
    | Judge.Witness (cert, _) ->
        Printf.sprintf "model:%d"
          (Instance.num_elements cert.Certificate.model)
    | Judge.No_small_model { max_extra; _ } ->
        Printf.sprintf "no_small_model:%d" max_extra
    | Judge.Open why -> "open:" ^ why
  in
  Printf.sprintf "%s|conjecture=%b|terminating=%b" evidence
    v.Judge.conjecture_applies v.Judge.chase_terminating

let test_pipeline_zoo_differential () =
  List.iter
    (fun (e : Zoo.entry) ->
      let go hc =
        Pipeline.construct ~params:(small_params hc None) e.Zoo.theory
          (Zoo.database_instance e) e.Zoo.query
      in
      check Alcotest.string e.Zoo.name
        (pipeline_sig (go Hc.Structural))
        (pipeline_sig (go Hc.Interned)))
    Zoo.all

let test_judge_zoo_differential () =
  List.iter
    (fun name ->
      let e = Option.get (Zoo.find name) in
      let d = Zoo.database_instance e in
      let go hc =
        Judge.judge
          ~budget:{ Judge.default_budget with pipeline_params = small_params hc None }
          e.Zoo.theory d e.Zoo.query
      in
      check Alcotest.string name
        (judge_sig (go Hc.Structural))
        (judge_sig (go Hc.Interned)))
    [ "ex1"; "ex7"; "remark3"; "sec55" ]

let test_judge_random_differential () =
  for seed = 0 to 11 do
    let theory = Gen.random_binary_theory ~rules:4 ~seed () in
    let d = Gen.random_instance ~facts:4 ~seed:(seed + 1000) () in
    let st = Random.State.make [| seed; 709 |] in
    let query = Cq.boolean (Cq.body (random_cq st)) in
    let go hc =
      (* a fresh pure-fuel governor per run: fuel trips are
         deterministic, so both modes must stop at the same point *)
      let budget =
        Budget.v ~rounds:60 ~elements:1_500 ~facts:10_000 ~rewrite_steps:400
          ~refine_steps:2_000 ~nodes:400 ()
      in
      Judge.judge
        ~budget:
          { Judge.default_budget with
            pipeline_params = small_params hc (Some budget);
          }
        theory d query
    in
    check Alcotest.string
      (Printf.sprintf "seed %d" seed)
      (judge_sig (go Hc.Structural))
      (judge_sig (go Hc.Interned))
  done

let test_pipeline_fuel_trap_differential () =
  let e = Option.get (Zoo.find "ex1") in
  let d = Zoo.database_instance e in
  List.iter
    (fun after ->
      let go hc =
        Pipeline.construct
          ~params:
            (small_params hc (Some (Budget.with_fuel_trap ~after (Budget.v ()))))
          e.Zoo.theory d e.Zoo.query
      in
      check Alcotest.string
        (Printf.sprintf "trap %d" after)
        (pipeline_sig (go Hc.Structural))
        (pipeline_sig (go Hc.Interned)))
    [ 0; 5; 25; 125; 625 ]

(* ----------------------------------------------------------------- *)
(* Observability reconciliation                                       *)
(* ----------------------------------------------------------------- *)

let hc_counter_names =
  [
    "hc.lookups";
    "hc.hits";
    "hc.resets";
    "containment.memo_lookups";
    "containment.memo_hits";
    "hc.eval_memo_lookups";
    "hc.eval_memo_hits";
  ]

let hc_deltas ~before ~after =
  let v s n = Option.value ~default:0 (M.find_int s n) in
  List.map (fun n -> (n, v after n - v before n)) hc_counter_names

(* A mixed workload touching both the containment memo and the eval
   memo, deterministic given a reset store. *)
let hc_workload () =
  let theory = th "e(X,Y) -> e(Y,X). e(X,Y), e(Y,Z) -> e(X,Z)." in
  let query = Parser.parse_query "? e(X,Y)." in
  ignore (Rewrite.rewrite ~hc:Hc.Interned ~max_disjuncts:30 ~max_steps:150 theory query);
  ignore (Ptypes.classes ~hc:Hc.Interned ~vars:2 (Gen.cycle ~len:3 ()))

let test_counters_reconcile () =
  Hc.reset ();
  let before = M.snapshot () in
  hc_workload ();
  let after = M.snapshot () in
  let d name = List.assoc name (hc_deltas ~before ~after) in
  check Alcotest.bool "store lookups happened" true (d "hc.lookups" > 0);
  check Alcotest.bool "memo lookups happened" true
    (d "containment.memo_lookups" > 0);
  List.iter
    (fun (hits, lookups) ->
      check Alcotest.bool (hits ^ " is non-negative") true (d hits >= 0);
      check Alcotest.bool
        (hits ^ " never exceeds " ^ lookups)
        true
        (d hits <= d lookups))
    [
      ("hc.hits", "hc.lookups");
      ("containment.memo_hits", "containment.memo_lookups");
      ("hc.eval_memo_hits", "hc.eval_memo_lookups");
    ];
  (* the nodes gauge is exactly the live store size *)
  let atoms, cqs = Hc.store_size () in
  check Alcotest.int "hc.nodes gauge tracks the store" (atoms + cqs)
    (Option.value ~default:(-1) (M.find_int after "hc.nodes"))

let test_counters_repeatable () =
  let run () =
    Hc.reset ();
    let before = M.snapshot () in
    hc_workload ();
    hc_deltas ~before ~after:(M.snapshot ())
  in
  check
    Alcotest.(list (pair string int))
    "identical workloads move the hc counters identically" (run ()) (run ())

let test_trace_inertness () =
  T.set_sink None;
  let run () =
    Hc.reset ();
    let before = M.snapshot () in
    hc_workload ();
    hc_deltas ~before ~after:(M.snapshot ())
  in
  let off = run () in
  let _collector = T.install_collector () in
  let on = run () in
  T.set_sink None;
  check
    Alcotest.(list (pair string int))
    "tracing on/off leaves the hc counters inert" off on

(* ----------------------------------------------------------------- *)
(* Serve: eviction resets the store without verdict drift             *)
(* ----------------------------------------------------------------- *)

let reply t line =
  match Json.parse (Server.handle_line t line) with
  | Ok j -> j
  | Error e -> Alcotest.failf "unparseable reply to %S: %s" line e

let member name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "reply lacks %S: %s" name (Json.to_string j)

let test_serve_eviction_no_drift () =
  (* pinned to Interned regardless of BDDFC_TEST_HC: the test is about
     the eviction hook resetting a populated store *)
  let config =
    { Server.default_config with Server.chase_rounds = 8; hc = Hc.Interned }
  in
  let t = Server.create ~config () in
  let load =
    reply t
      {|{"id":0,"op":"load","session":"s","program":"e(X,Y) -> e(Y,X). e(a,b)."}|}
  in
  check Alcotest.bool "load ok" true
    (match member "ok" load with Json.B b -> b | _ -> false);
  let judge_line =
    {|{"id":1,"op":"judge","session":"s","query":"? e(b,a)."}|}
  in
  let first = Server.handle_line t judge_line in
  let atoms0, cqs0 = Hc.store_size () in
  check Alcotest.bool "the judge populated the store" true (atoms0 + cqs0 > 0);
  let resets_before =
    Option.value ~default:0 (M.find_int (M.snapshot ()) "hc.resets")
  in
  let evicted = reply t {|{"id":2,"op":"evict","session":"s"}|} in
  check Alcotest.bool "eviction reported" true
    (match member "evicted" evicted with Json.B b -> b | _ -> false);
  check Alcotest.int "eviction reset the interned store (hc.resets)"
    (resets_before + 1)
    (Option.value ~default:0 (M.find_int (M.snapshot ()) "hc.resets"));
  let atoms1, cqs1 = Hc.store_size () in
  check Alcotest.int "the store is empty after eviction" 0 (atoms1 + cqs1);
  (* the rebuilt session re-interns from empty and lands on the same
     bytes: no verdict drift across the reset *)
  let second = Server.handle_line t judge_line in
  check Alcotest.string "byte-identical reply across the eviction" first second;
  let atoms2, cqs2 = Hc.store_size () in
  check Alcotest.bool "the rebuilt session re-interned" true (atoms2 + cqs2 > 0)

(* ----------------------------------------------------------------- *)

let suite =
  ( "hc",
    [
      tc "interning is idempotent" test_intern_idempotent;
      tc "alpha-equivalent queries share a node" test_alpha_equivalent_same_node;
      tc "distinct ids imply distinct structure" test_distinct_ids_distinct_structure;
      tc "locations never reach the keys" test_locations_never_reach_the_keys;
      tc "atom hashing folds over every argument" test_full_arity_hashing;
      tc "fuzz: containment verdicts agree across modes" test_fuzz_containment;
      tc "fuzz: UCQ pruning agrees across modes" test_fuzz_prune_ucq;
      tc "memo coherence: cached verdicts replay" test_memo_coherence_replay;
      tc "rewrite: zoo differential" test_rewrite_zoo_differential;
      tc "rewrite: random-theory differential" test_rewrite_random_differential;
      tc "rewrite: fuel-trap points do not diverge" test_rewrite_fuel_trap_differential;
      tc "rewrite: expired deadline trips identically" test_rewrite_expired_deadline_differential;
      tc "ptypes: inclusion and classes agree across modes" test_ptypes_differential;
      tc "converge: gained-query traces agree across modes" test_converge_differential;
      tc "pipeline: zoo differential" test_pipeline_zoo_differential;
      tc "judge: zoo differential" test_judge_zoo_differential;
      tc "judge: random differential under fuel budgets" test_judge_random_differential;
      tc "pipeline: fuel-trap points do not diverge" test_pipeline_fuel_trap_differential;
      tc "obs: hits reconcile with lookups and the store" test_counters_reconcile;
      tc "obs: identical workloads, identical counter deltas" test_counters_repeatable;
      tc "obs: tracing on/off leaves hc counters inert" test_trace_inertness;
      tc "serve: eviction resets the store without drift" test_serve_eviction_no_drift;
    ] )
