(* Unit tests for Bddfc_finitemodel: normalization, model checking,
   certificates, the naive baseline, the Theorem 2 pipeline. *)

open Bddfc_logic
open Bddfc_structure
open Bddfc_hom
open Bddfc_chase
open Bddfc_finitemodel
open Bddfc_workload

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let th src = Parser.parse_theory src
let db src = Instance.of_atoms (Parser.parse_atoms src)
let q src = Parser.parse_query src

(* ------------------------------------------------------------------ *)
(* Normalize                                                           *)
(* ------------------------------------------------------------------ *)

let test_hide_query () =
  let t = th "e(X,Y) -> exists Z. e(Y,Z)." in
  let h = Normalize.hide_query t (q "? e(X,Y), e(Y,X).") in
  check Alcotest.int "one rule added" 2 (Theory.size h.Normalize.theory);
  check Alcotest.string "fresh predicate" "f_hidden"
    (Pred.name h.Normalize.query_pred);
  (* the F-rule fires exactly when the query holds *)
  let d = db "e(a,b). e(b,a)." in
  let r = Chase.run ~max_rounds:3 h.Normalize.theory d in
  check Alcotest.bool "F derived" true
    (Instance.facts_with_pred r.Chase.instance h.Normalize.query_pred <> []);
  let d2 = db "e(a,b)." in
  let r2 = Chase.run ~max_rounds:5 h.Normalize.theory d2 in
  check Alcotest.bool "F not derived" true
    (Instance.facts_with_pred r2.Chase.instance h.Normalize.query_pred = [])

let test_hide_ground_query () =
  let t = th "e(X,Y) -> exists Z. e(Y,Z)." in
  let h = Normalize.hide_query t (q "? e(a,b).") in
  let r = Chase.run ~max_rounds:3 h.Normalize.theory (db "e(a,b).") in
  check Alcotest.bool "ground query hidden and detected" true
    (Instance.facts_with_pred r.Chase.instance h.Normalize.query_pred <> [])

let test_spade5_shapes () =
  let t =
    th
      {| e(X,Y) -> exists Z. e(Y,Z).
         p(X) -> exists Z. e(Z,X).
         p(X) -> exists Z. r(Z,Z).
         p(X) -> exists Z. m(Z).
         e(X,Y), e(Y,Z) -> e(X,Z). |}
  in
  let s = Normalize.spade5 t in
  check Alcotest.bool "normalized" true (Theory.is_normalized s.Normalize.theory);
  check Alcotest.int "four TGPs" 4 (List.length s.Normalize.tgps);
  (* semantics preserved: chase certain answers agree on samples *)
  let d = db "p(a). e(b,c)." in
  List.iter
    (fun qs ->
      let query = q qs in
      let c1 = Chase.certain ~max_rounds:8 t d query in
      let c2 = Chase.certain ~max_rounds:10 s.Normalize.theory d query in
      let entailed = function Chase.Entailed _ -> Some true | Chase.Not_entailed -> Some false | Chase.Unknown _ -> None in
      match (entailed c1, entailed c2) with
      | Some b1, Some b2 -> check Alcotest.bool ("agrees on " ^ qs) b1 b2
      | None, _ | _, None -> () (* infinite chase on both: fine *))
    [ "? r(U,U)."; "? m(U)."; "? e(U,a)."; "? e(b,U), e(U,V)." ]

let test_spade5_frontier_one_multi_witness () =
  (* Section 5.1: one TGP per existential variable plus a joining rule *)
  let t = th "p(Y) -> exists Z,W. g(Y,Z,W)." in
  let s = Normalize.spade5 t in
  check Alcotest.int "two TGDs + join" 3 (Theory.size s.Normalize.theory);
  let d = db "p(a)." in
  let r = Chase.run ~max_rounds:4 s.Normalize.theory d in
  check Alcotest.bool "joined head derived" true
    (Eval.holds r.Chase.instance (q "? g(a,Z,W).")) ;
  check Alcotest.bool "fixpoint" true (Chase.is_model r)

let test_spade5_rejects_wide_frontier () =
  let t = th "e(X,Y) -> exists Z. g(X,Y,Z)." in
  match Normalize.spade5 t with
  | exception Normalize.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported for a two-variable frontier"

(* ------------------------------------------------------------------ *)
(* Model_check / Certificate                                           *)
(* ------------------------------------------------------------------ *)

let test_model_check () =
  let t = th "e(X,Y) -> exists Z. e(Y,Z). e(X,Y), e(Y,Z) -> e(X,Z)." in
  let loop = db "e(a,a)." in
  check Alcotest.bool "loop is a model" true (Model_check.is_model t loop);
  let edge = db "e(a,b)." in
  check Alcotest.bool "edge is not" false (Model_check.is_model t edge);
  let v = Model_check.violations t edge in
  check Alcotest.bool "violation reported" true (v <> []);
  (* 3-cycle: needs transitive closure *)
  let c3 = db "e(a,b). e(b,c). e(c,a)." in
  check Alcotest.bool "bare cycle violates transitivity" false
    (Model_check.is_model t c3)

let test_contains_database () =
  let d = db "e(a,b). p(a)." in
  check Alcotest.bool "superset ok" true
    (Model_check.contains_database ~db:d (db "e(a,b). p(a). p(b)."));
  check Alcotest.bool "missing fact" false
    (Model_check.contains_database ~db:d (db "e(a,b)."));
  check Alcotest.bool "missing constant" false
    (Model_check.contains_database ~db:d (db "e(a,c)."))

let test_certificate () =
  let t = th "e(X,Y) -> exists Z. e(Y,Z)." in
  let cert =
    { Certificate.theory = t;
      database = db "e(a,b).";
      query = q "? e(X,X).";
      model = db "e(a,b). e(b,c). e(c,b).";
    }
  in
  check Alcotest.bool "valid certificate" true (Certificate.is_valid cert);
  let bad = { cert with model = db "e(a,b)." } in
  check Alcotest.bool "missing witness caught" false (Certificate.is_valid bad);
  let bad2 = { cert with model = db "e(a,b). e(b,b)." } in
  check Alcotest.bool "query-satisfying model caught" false
    (Certificate.is_valid bad2);
  let bad3 = { cert with model = db "e(b,c). e(c,b)." } in
  check Alcotest.bool "database dropped caught" false (Certificate.is_valid bad3)

(* ------------------------------------------------------------------ *)
(* Naive                                                               *)
(* ------------------------------------------------------------------ *)

let test_naive_search_finds () =
  let t = th "e(X,Y) -> exists Z. e(Y,Z)." in
  match Naive.search t (db "e(a,b).") (q "? e(X,X).") with
  | Naive.Found m ->
      check Alcotest.bool "model checks" true (Model_check.is_model t m);
      check Alcotest.bool "avoids query" false (Eval.holds m (q "? e(X,X)."));
      check Alcotest.bool "small" true (Instance.num_elements m <= 4)
  | _ -> Alcotest.fail "expected a model"

let test_naive_search_example1 () =
  let e = Option.get (Zoo.find "ex1") in
  match Naive.search e.Zoo.theory (Zoo.database_instance e) e.Zoo.query with
  | Naive.Found m ->
      check Alcotest.bool "model checks" true
        (Model_check.is_model e.Zoo.theory m);
      check Alcotest.bool "avoids u" false (Eval.holds m e.Zoo.query)
  | _ -> Alcotest.fail "expected a model for Example 1"

let test_naive_search_nonfc () =
  (* Section 5.5: no countermodel exists; the DFS must not fabricate one *)
  let e = Option.get (Zoo.find "sec55") in
  let params = { Naive.default_search_params with max_size = 6; max_nodes = 4_000 } in
  match Naive.search ~params e.Zoo.theory (Zoo.database_instance e) e.Zoo.query with
  | Naive.Found m ->
      Alcotest.failf "impossible: found a %d-element countermodel"
        (Instance.num_elements m)
  | Naive.Exhausted | Naive.Budget_out _ -> ()

let test_exhaustive_absence_sec55 () =
  (* prove there is no countermodel with one extra element *)
  let e = Option.get (Zoo.find "sec55") in
  match
    Naive.exhaustive_absence ~max_candidates:20 ~max_extra:1 e.Zoo.theory
      (Zoo.database_instance e) e.Zoo.query
  with
  | Naive.No_model -> ()
  | Naive.Counter_model _ -> Alcotest.fail "section 5.5 refuted?!"
  | Naive.Too_large k -> Alcotest.failf "guard hit at %d candidates" k
  | Naive.Absence_exhausted _ -> Alcotest.fail "unexpected budget trip"

let test_exhaustive_finds_when_exists () =
  let t = th "e(X,Y) -> exists Z. e(Y,Z)." in
  match
    Naive.exhaustive_absence ~max_candidates:20 ~max_extra:1 t (db "e(a,b).")
      (q "? e(X,X).")
  with
  | Naive.Counter_model m ->
      check Alcotest.bool "model" true (Model_check.is_model t m)
  | Naive.No_model -> Alcotest.fail "a 3-element countermodel exists"
  | Naive.Too_large _ -> Alcotest.fail "guard hit"
  | Naive.Absence_exhausted _ -> Alcotest.fail "unexpected budget trip"

(* ------------------------------------------------------------------ *)
(* Pipeline                                                            *)
(* ------------------------------------------------------------------ *)

let run_zoo name =
  let e = Option.get (Zoo.find name) in
  Pipeline.construct e.Zoo.theory (Zoo.database_instance e) e.Zoo.query

let test_pipeline_example1 () =
  match run_zoo "ex1" with
  | Pipeline.Model (cert, stats) ->
      check Alcotest.bool "certificate valid" true (Certificate.is_valid cert);
      check Alcotest.int "kappa 3" 3 stats.Pipeline.kappa;
      check Alcotest.bool "kappa complete" true stats.Pipeline.kappa_complete
  | _ -> Alcotest.fail "expected a model for Example 1"

let test_pipeline_example7 () =
  match run_zoo "ex7" with
  | Pipeline.Model (cert, _) ->
      check Alcotest.bool "valid" true (Certificate.is_valid cert);
      (* the saturation derived r-atoms: Lemma 5 in action *)
      check Alcotest.bool "r-atoms present" true
        (Instance.facts_with_pred cert.Certificate.model (Pred.make "r" 2) <> [])
  | _ -> Alcotest.fail "expected a model for Example 7"

let test_pipeline_example9 () =
  match run_zoo "ex9" with
  | Pipeline.Model (cert, _) ->
      check Alcotest.bool "valid" true (Certificate.is_valid cert)
  | _ -> Alcotest.fail "expected a model for Example 9"

let test_pipeline_entailed () =
  match run_zoo "remark3" with
  | Pipeline.Query_entailed d ->
      check Alcotest.int "e(a,a) in D itself" 0 d
  | _ -> Alcotest.fail "remark3 query is certain (e(a,a) in D)"

let test_pipeline_finite_chase () =
  match run_zoo "weakly_acyclic" with
  | Pipeline.Model (cert, stats) ->
      check Alcotest.bool "valid" true (Certificate.is_valid cert);
      check Alcotest.bool "chase fixpoint shortcut" true stats.Pipeline.chase_fixpoint
  | _ -> Alcotest.fail "expected the finite chase as model"

let test_pipeline_linear_and_sticky () =
  List.iter
    (fun name ->
      match run_zoo name with
      | Pipeline.Model (cert, _) ->
          check Alcotest.bool (name ^ " valid") true (Certificate.is_valid cert)
      | _ -> Alcotest.fail ("expected a model for " ^ name))
    [ "linear"; "sticky" ]

let test_pipeline_nonfc_unknown () =
  (* Section 5.5 is not FC: the pipeline must never output a model, and it
     cannot prove entailment either (the chase never satisfies Phi) *)
  match run_zoo "sec55" with
  | Pipeline.Model (cert, _) ->
      Alcotest.failf "soundness bug: certificate valid=%b"
        (Certificate.is_valid cert)
  | Pipeline.Query_entailed _ -> Alcotest.fail "chase never satisfies Phi"
  | Pipeline.Unknown _ -> ()

let test_pipeline_query_on_entailed_instance () =
  (* same theory as ex1, but D already contains a triangle: u is certain *)
  let e = Option.get (Zoo.find "ex1") in
  let d = db "e(a,b). e(b,c). e(c,a)." in
  match Pipeline.construct e.Zoo.theory d e.Zoo.query with
  | Pipeline.Query_entailed k -> check Alcotest.bool "depth 1" true (k >= 1)
  | _ -> Alcotest.fail "u(X,Y) is certain on a triangle"

let test_pipeline_vs_naive_agreement () =
  (* both engines agree on model existence for the FC zoo members *)
  List.iter
    (fun name ->
      let e = Option.get (Zoo.find name) in
      let d = Zoo.database_instance e in
      let pipeline_found =
        match Pipeline.construct e.Zoo.theory d e.Zoo.query with
        | Pipeline.Model _ -> true
        | _ -> false
      in
      let naive_found =
        match Naive.search e.Zoo.theory d e.Zoo.query with
        | Naive.Found _ -> true
        | _ -> false
      in
      check Alcotest.bool (name ^ ": engines agree") naive_found pipeline_found)
    [ "ex1"; "ex7"; "linear"; "sticky"; "weakly_acyclic" ]

let suite =
  ( "finitemodel",
    [ tc "hide query (♠4)" test_hide_query;
      tc "hide ground query" test_hide_ground_query;
      tc "♠5 shapes" test_spade5_shapes;
      tc "♠5 multi-witness (Section 5.1)" test_spade5_frontier_one_multi_witness;
      tc "♠5 rejects wide frontier" test_spade5_rejects_wide_frontier;
      tc "model check" test_model_check;
      tc "contains database" test_contains_database;
      tc "certificate verification" test_certificate;
      tc "naive search finds" test_naive_search_finds;
      tc "naive search Example 1" test_naive_search_example1;
      tc "naive search cannot fake non-FC" test_naive_search_nonfc;
      tc "exhaustive absence (Section 5.5)" test_exhaustive_absence_sec55;
      tc "exhaustive finds countermodel" test_exhaustive_finds_when_exists;
      tc "pipeline Example 1" test_pipeline_example1;
      tc "pipeline Example 7 (Lemma 5)" test_pipeline_example7;
      tc "pipeline Example 9" test_pipeline_example9;
      tc "pipeline certain query (Remark 3)" test_pipeline_entailed;
      tc "pipeline finite chase shortcut" test_pipeline_finite_chase;
      tc "pipeline linear and sticky" test_pipeline_linear_and_sticky;
      tc "pipeline honest on non-FC (5.5)" test_pipeline_nonfc_unknown;
      tc "pipeline detects entailment" test_pipeline_query_on_entailed_instance;
      tc "pipeline vs naive agreement" test_pipeline_vs_naive_agreement;
    ] )
