(* Unit tests for Bddfc_hom: query evaluation, homomorphisms, containment,
   the pebble game. *)

open Bddfc_logic
open Bddfc_structure
open Bddfc_hom
open Bddfc_workload

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let q src = Parser.parse_query src
let atoms src = Parser.parse_atoms src

(* ------------------------------------------------------------------ *)
(* Eval                                                                *)
(* ------------------------------------------------------------------ *)

let test_eval_basic () =
  let inst = Instance.of_atoms (atoms "e(a,b). e(b,c).") in
  check Alcotest.bool "path 2" true (Eval.holds inst (q "? e(X,Y), e(Y,Z)."));
  check Alcotest.bool "no loop" false (Eval.holds inst (q "? e(X,X)."));
  check Alcotest.bool "no path 3" false
    (Eval.holds inst (q "? e(X,Y), e(Y,Z), e(Z,W)."))

let test_eval_constants () =
  let inst = Instance.of_atoms (atoms "e(a,b). e(b,c).") in
  check Alcotest.bool "e(a,X)" true (Eval.holds inst (q "? e(a,X)."));
  check Alcotest.bool "e(c,X)" false (Eval.holds inst (q "? e(c,X)."));
  check Alcotest.bool "unknown const" false (Eval.holds inst (q "? e(zzz,X)."))

let test_eval_repeated_vars () =
  let inst = Instance.of_atoms (atoms "e(a,a). e(a,b).") in
  check Alcotest.bool "diag" true (Eval.holds inst (q "? e(X,X)."));
  let answers = Eval.answers inst (q "?(X) e(X,X).") in
  check Alcotest.int "one diagonal element" 1 (List.length answers)

let test_eval_answers () =
  let inst = Instance.of_atoms (atoms "e(a,b). e(a,c). e(b,c).") in
  let answers = Eval.answers inst (q "?(X,Y) e(X,Y).") in
  check Alcotest.int "three edges" 3 (List.length answers);
  let from_a = Eval.answers inst (q "?(Y) e(a,Y).") in
  check Alcotest.int "two successors of a" 2 (List.length from_a)

let test_eval_answers_distinct () =
  (* duplicate derivations collapse in the answer set *)
  let inst = Instance.of_atoms (atoms "e(a,b). e(a,c).") in
  let answers = Eval.answers inst (q "?(X) e(X,Y).") in
  check Alcotest.int "a occurs once" 1 (List.length answers)

let test_eval_holds_at () =
  let inst = Instance.of_atoms (atoms "e(a,b). e(b,c).") in
  let b = Instance.const inst "b" in
  let a = Instance.const inst "a" in
  let query = q "? e(X,Y)." in
  check Alcotest.bool "b has successor" true (Eval.holds_at inst query "X" b);
  check Alcotest.bool "b has predecessor" true (Eval.holds_at inst query "Y" b);
  check Alcotest.bool "a has no predecessor" false (Eval.holds_at inst query "Y" a)

let test_eval_cross_product () =
  (* disconnected query = cross product *)
  let inst = Instance.of_atoms (atoms "e(a,b). p(c).") in
  check Alcotest.bool "both parts" true (Eval.holds inst (q "? e(X,Y), p(Z)."));
  check Alcotest.bool "missing part" false (Eval.holds inst (q "? e(X,Y), r(Z,W)."))

let test_eval_brute_force_agreement () =
  (* compare the indexed join against naive enumeration on random graphs *)
  let queries =
    [ q "? e(X,Y), e(Y,Z).";
      q "? e(X,Y), e(Y,X).";
      q "? e(X,X).";
      q "? e(X,Y), e(X,Z), e(Y,Z).";
      q "? e(X,Y), e(Z,Y), e(Z,W)." ]
  in
  List.iter
    (fun seed ->
      let inst = Gen.random_digraph ~nodes:6 ~edges:9 ~seed () in
      let elems = Instance.elements inst in
      List.iter
        (fun query ->
          let vars = Cq.SS.elements (Cq.all_vars query) in
          (* naive: try all assignments *)
          let rec assign bound = function
            | [] ->
                List.for_all
                  (fun a ->
                    let ids =
                      List.map
                        (function
                          | Term.Var x -> List.assoc x bound
                          | Term.Cst c -> Option.get (Instance.const_opt inst c))
                        (Atom.args a)
                    in
                    Instance.mem_fact inst
                      (Fact.make (Atom.pred a) (Array.of_list ids)))
                  (Cq.body query)
            | x :: rest ->
                List.exists (fun e -> assign ((x, e) :: bound) rest) elems
          in
          let naive = assign [] vars in
          check Alcotest.bool
            (Printf.sprintf "seed %d: %s" seed (Cq.show query))
            naive (Eval.holds inst query))
        queries)
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Hom                                                                 *)
(* ------------------------------------------------------------------ *)

let test_hom_chain_to_cycle () =
  let chain = Gen.null_chain ~consts:0 ~len:6 () in
  let cyc =
    (* a 3-cycle of nulls *)
    let inst = Instance.create () in
    let e = Pred.make "e" 2 in
    let ns = Array.init 3 (fun _ -> Instance.fresh_null inst ~birth:0 ~rule:"t" ~parent:None) in
    for i = 0 to 2 do
      ignore (Instance.add_fact inst (Fact.make e [| ns.(i); ns.((i + 1) mod 3) |]))
    done;
    inst
  in
  check Alcotest.bool "chain -> cycle" true (Hom.exists chain cyc);
  check Alcotest.bool "cycle -> chain" false (Hom.exists cyc chain)

let test_hom_respects_constants () =
  let src = Instance.of_atoms (atoms "e(a,b).") in
  let tgt1 = Instance.of_atoms (atoms "e(a,b). e(b,c).") in
  let tgt2 = Instance.of_atoms (atoms "e(b,a).") in
  check Alcotest.bool "identity embed" true (Hom.exists src tgt1);
  check Alcotest.bool "constants rigid" false (Hom.exists src tgt2)

let test_hom_is_homomorphism () =
  let src = Gen.null_chain ~consts:0 ~len:4 () in
  let tgt = Gen.null_chain ~consts:0 ~len:8 () in
  match Hom.find src tgt with
  | None -> Alcotest.fail "expected a homomorphism"
  | Some m -> check Alcotest.bool "verified" true (Hom.is_homomorphism src tgt m)

let test_core_cycle () =
  (* a 3-cycle with a pendant path folds onto the cycle *)
  let inst = Instance.create () in
  let e = Pred.make "e" 2 in
  let ns = Array.init 3 (fun _ -> Instance.fresh_null inst ~birth:0 ~rule:"t" ~parent:None) in
  for i = 0 to 2 do
    ignore (Instance.add_fact inst (Fact.make e [| ns.(i); ns.((i + 1) mod 3) |]))
  done;
  let extra = Instance.fresh_null inst ~birth:0 ~rule:"t" ~parent:None in
  ignore (Instance.add_fact inst (Fact.make e [| extra; ns.(0) |]));
  let core = Hom.core inst in
  check Alcotest.int "core is the 3-cycle" 3 (Instance.num_facts core)

(* ------------------------------------------------------------------ *)
(* Containment                                                         *)
(* ------------------------------------------------------------------ *)

let test_containment_basic () =
  let path2 = q "? e(X,Y), e(Y,Z)." in
  let edge = q "? e(X,Y)." in
  check Alcotest.bool "path2 ⊆ edge" true
    (Containment.subsumes ~general:edge path2);
  check Alcotest.bool "edge ⊄ path2" false
    (Containment.subsumes ~general:path2 edge)

let test_containment_answer_vars () =
  let q1 = q "?(X) e(X,Y), e(Y,Z)." in
  let q2 = q "?(X) e(X,Y)." in
  check Alcotest.bool "with answers" true
    (Containment.subsumes ~general:q2 q1);
  (* answer variable in a different position: not contained *)
  let q3 = q "?(X) e(Y,X)." in
  check Alcotest.bool "different role" false
    (Containment.subsumes ~general:q3 q1)

let test_containment_constants () =
  let qa = q "? e(a,X)." in
  let qany = q "? e(Y,X)." in
  check Alcotest.bool "specific const ⊆ general var" true
    (Containment.subsumes ~general:qany qa);
  check Alcotest.bool "var not ⊆ const" false
    (Containment.subsumes ~general:qa qany)

let test_minimize () =
  let redundant = q "? e(X,Y), e(X2,Y2)." in
  let m = Containment.minimize redundant in
  check Alcotest.int "one atom survives" 1 (Cq.num_atoms m);
  check Alcotest.bool "equivalent" true (Containment.equivalent m redundant);
  (* a genuine path is not shrunk *)
  let path = q "? e(X,Y), e(Y,Z)." in
  check Alcotest.int "path kept" 2 (Cq.num_atoms (Containment.minimize path))

let test_prune_ucq () =
  let edge = q "? e(X,Y)." in
  let path2 = q "? e(X,Y), e(Y,Z)." in
  let loop = q "? r(X,X)." in
  let pruned = Containment.prune_ucq [ path2; edge; loop ] in
  check Alcotest.int "path2 absorbed" 2 (List.length pruned)

(* ------------------------------------------------------------------ *)
(* Pebble game                                                         *)
(* ------------------------------------------------------------------ *)

let test_ptypes_chain () =
  (* Example 3: in an uncolored null chain, positive k-types see depth up
     to k - 1 (a path query pinning depth d needs d + 1 variables). *)
  let chain = Gen.null_chain ~consts:0 ~len:10 () in
  (* element ids equal depth here *)
  check Alcotest.bool "interior pair (2 vars)" true
    (Ptypes.equiv ~vars:2 chain 4 5);
  check Alcotest.bool "head differs (no predecessor)" false
    (Ptypes.equiv ~vars:2 chain 0 5);
  check Alcotest.bool "depth 1 vs interior, 2 vars: equal" true
    (Ptypes.equiv ~vars:2 chain 1 5);
  check Alcotest.bool "depth 1 vs interior, 3 vars: differ" false
    (Ptypes.equiv ~vars:3 chain 1 5);
  check Alcotest.bool "depth 2 vs interior, 3 vars: equal" true
    (Ptypes.equiv ~vars:3 chain 2 6)

let test_ptypes_constants_distinct () =
  (* Remark 1: constants have pairwise distinct types at every n >= 1 *)
  let inst = Instance.of_atoms (atoms "e(a,b). e(b,c). e(c,d).") in
  let b = Instance.const inst "b" and c = Instance.const inst "c" in
  check Alcotest.bool "constants have distinct types" false
    (Ptypes.equiv ~vars:1 inst b c)

let test_ptypes_directionality () =
  (* inclusion one way but not the other: chain start vs interior *)
  let chain = Gen.null_chain ~consts:0 ~len:8 () in
  check Alcotest.bool "head <= interior" true
    (Ptypes.ptp_leq ~vars:2 chain (Some 0) chain (Some 3));
  check Alcotest.bool "interior not <= head" false
    (Ptypes.ptp_leq ~vars:2 chain (Some 3) chain (Some 0))

let test_ptypes_untyped () =
  let loop = Instance.create () in
  let n = Instance.fresh_null loop ~birth:0 ~rule:"t" ~parent:None in
  ignore (Instance.add_fact loop (Fact.make (Pred.make "e" 2) [| n; n |]));
  let chain = Gen.null_chain ~consts:0 ~len:5 () in
  check Alcotest.bool "chain queries hold in loop" true
    (Ptypes.ptp_leq ~vars:3 chain None loop None);
  check Alcotest.bool "loop query e(y,y) fails in chain" false
    (Ptypes.ptp_leq ~vars:1 loop None chain None)

let test_ptypes_example2 () =
  (* Example 2 of the paper: ptp2 of an interior chain element agrees with
     a 3-cycle element; ptp4 sees the triangle query. *)
  let chain = Gen.null_chain ~consts:0 ~len:12 () in
  let cyc = Instance.create () in
  let e = Pred.make "e" 2 in
  let ns = Array.init 3 (fun _ -> Instance.fresh_null cyc ~birth:0 ~rule:"t" ~parent:None) in
  for i = 0 to 2 do
    ignore (Instance.add_fact cyc (Fact.make e [| ns.(i); ns.((i + 1) mod 3) |]))
  done;
  check Alcotest.bool "ptp2 equal" true
    (Ptypes.ptp_equal ~vars:2 chain 6 cyc ns.(0));
  check Alcotest.bool "ptp4 differs (triangle query)" false
    (Ptypes.ptp_equal ~vars:4 chain 6 cyc ns.(0))

let test_ptypes_classes () =
  let chain = Gen.null_chain ~consts:0 ~len:8 () in
  let cls, n = Ptypes.classes ~vars:2 chain in
  (* depth 0 (no pred), depths 1..6 (both sides), depth 7 (no succ) *)
  check Alcotest.int "three classes at 2 vars" 3 n;
  check Alcotest.bool "interior merged" true (cls.(2) = cls.(5))

let test_pebble_sound_for_cqs () =
  (* the pebble game preserves more than CQs: game-inclusion implies
     CQ-type inclusion on samples *)
  let insts =
    [ Gen.null_chain ~consts:0 ~len:6 ();
      Gen.random_digraph ~nodes:5 ~edges:7 ~seed:3 () ]
  in
  List.iter
    (fun inst ->
      let elems = Instance.elements inst in
      List.iter
        (fun d ->
          List.iter
            (fun e ->
              if Pebble.ptp_leq ~vars:2 inst (Some d) inst (Some e) then
                check Alcotest.bool "game => CQ inclusion" true
                  (Ptypes.ptp_leq ~vars:2 inst (Some d) inst (Some e)))
            elems)
        elems)
    insts

let test_pebble_loop_vs_chain () =
  let loop = Instance.create () in
  let n = Instance.fresh_null loop ~birth:0 ~rule:"t" ~parent:None in
  ignore (Instance.add_fact loop (Fact.make (Pred.make "e" 2) [| n; n |]));
  let chain = Gen.null_chain ~consts:0 ~len:5 () in
  (* Duplicator answers everything with the loop node *)
  check Alcotest.bool "chain -> loop: duplicator wins" true
    (Pebble.ptp_leq ~vars:2 chain None loop None);
  check Alcotest.bool "loop -> chain: spoiler wins" false
    (Pebble.ptp_leq ~vars:1 loop None chain None)

let suite =
  ( "hom",
    [ tc "eval basic" test_eval_basic;
      tc "eval constants" test_eval_constants;
      tc "eval repeated vars" test_eval_repeated_vars;
      tc "eval answers" test_eval_answers;
      tc "eval distinct answers" test_eval_answers_distinct;
      tc "eval holds_at" test_eval_holds_at;
      tc "eval cross product" test_eval_cross_product;
      tc "eval vs brute force" test_eval_brute_force_agreement;
      tc "hom chain to cycle" test_hom_chain_to_cycle;
      tc "hom constants rigid" test_hom_respects_constants;
      tc "hom verified" test_hom_is_homomorphism;
      tc "core of looped path" test_core_cycle;
      tc "containment basic" test_containment_basic;
      tc "containment answers" test_containment_answer_vars;
      tc "containment constants" test_containment_constants;
      tc "minimize" test_minimize;
      tc "prune ucq" test_prune_ucq;
      tc "ptypes chain (Example 3)" test_ptypes_chain;
      tc "ptypes constants (Remark 1)" test_ptypes_constants_distinct;
      tc "ptypes one-way inclusion" test_ptypes_directionality;
      tc "ptypes untyped" test_ptypes_untyped;
      tc "ptypes Example 2" test_ptypes_example2;
      tc "ptypes classes" test_ptypes_classes;
      tc "pebble game is sound for CQs" test_pebble_sound_for_cqs;
      tc "pebble loop vs chain" test_pebble_loop_vs_chain;
    ] )
