(* Differential oracle for incremental chase maintenance: a maintained
   instance must be indistinguishable-for-our-purposes from a
   from-scratch chase of the updated database.

   The oracle is hom-both-ways rather than syntactic equality: the
   resumed chase visits triggers in a different global order than a
   fresh chase, so labelled nulls are allocated differently and the
   instances agree only up to null renaming.  Two exceptions where
   bit-identity *is* required and checked: the bailout path (which is
   literally a fresh chase with the same knobs as the reference), and
   Seminaive vs Parallel maintenance of the same batch (PR 8's
   bit-identity contract extends through the record hook).

   Counter reconciliation is checked on every non-bailout batch:
     |after| = |before| - deleted + rederived + inserted
   both from the per-batch stats and (in aggregate) from the obs
   registry counters. *)

open Bddfc_budget
open Bddfc_logic
open Bddfc_structure
open Bddfc_chase
open Bddfc_workload
module H = Bddfc_hom.Hom
module Obs = Bddfc_obs.Obs

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f
let th src = Parser.parse_theory src
let atoms src = Parser.parse_atoms src
let db src = Instance.of_atoms (atoms src)

(* ----------------------------------------------------------------- *)
(* The oracle                                                          *)
(* ----------------------------------------------------------------- *)

type verdict = Checked | Bailed | Skipped

(* Saturate [base], apply one update batch both ways — maintained and
   from scratch — and hold them to the oracle.  [Skipped] only when the
   budget-free reference itself failed to reach a comparable state. *)
let run_case ?strategy ?(max_rounds = 8) ?(max_elements = 2_000) ?bailout
    name theory base ~insert ~retract =
  let d = Instance.copy base in
  let state = Maintain.saturate ?strategy ~max_rounds ~max_elements theory d in
  let n0 = Instance.num_facts state.Maintain.inst in
  ignore (Maintain.update_db d ~insert ~retract);
  let scratch = Chase.run ?strategy ~max_rounds ~max_elements theory d in
  match
    Maintain.apply ?strategy ~max_rounds ~max_elements ?bailout theory ~db:d
      state ~insert ~retract
  with
  | exception Budget.Exhausted _ -> Skipped
  | st, stats -> (
      if not stats.Maintain.bailed_out then
        check Alcotest.int
          (name ^ ": counters reconcile")
          (Instance.num_facts st.Maintain.inst)
          (n0 - stats.Maintain.deleted + stats.Maintain.rederived
         + stats.Maintain.inserted);
      if retract = [] && state.Maintain.outcome = Chase.Fixpoint then
        check Alcotest.bool
          (name ^ ": insert-only batches never delete or bail")
          true
          (stats.Maintain.deleted = 0 && not stats.Maintain.bailed_out);
      match (stats.Maintain.bailed_out, st.Maintain.outcome) with
      | true, _ ->
          (* the bailout re-chased [d] with exactly the reference's
             knobs, so even null ids coincide *)
          check Alcotest.bool
            (name ^ ": bailout is bit-identical to scratch")
            true
            (Instance.equal_facts st.Maintain.inst scratch.Chase.instance);
          Bailed
      | false, Chase.Fixpoint -> (
          match scratch.Chase.outcome with
          | Chase.Fixpoint ->
              (* hom both ways, not equal counts: the resumed chase
                 visits triggers in a different order, so the two
                 universal models need not be isomorphic *)
              check Alcotest.bool
                (name ^ ": hom maintained -> scratch")
                true
                (H.exists st.Maintain.inst scratch.Chase.instance);
              check Alcotest.bool
                (name ^ ": hom scratch -> maintained")
                true
                (H.exists scratch.Chase.instance st.Maintain.inst);
              Checked
          | _ ->
              (* the reference was truncated but the maintained run
                 reached a model of the updated db, so the truncated
                 prefix must map into it *)
              check Alcotest.bool
                (name ^ ": hom truncated scratch -> maintained model")
                true
                (H.exists scratch.Chase.instance st.Maintain.inst);
              Checked)
      | false, _ -> Skipped)

(* ----------------------------------------------------------------- *)
(* Hand-written cases                                                  *)
(* ----------------------------------------------------------------- *)

let tc_theory = th "e(X,Y), e(Y,Z) -> e(X,Z)."

let test_insert_resumes () =
  let base = db "e(a,b). e(b,c)." in
  let v =
    run_case "tc insert" tc_theory base ~insert:(atoms "e(c,d).") ~retract:[]
  in
  check Alcotest.bool "insert case checked" true (v = Checked)

let test_retract_shrinks () =
  let base = db "e(a,b). e(b,c). e(c,d)." in
  let d = Instance.copy base in
  let state = Maintain.saturate tc_theory d in
  check Alcotest.int "saturated closure" 6
    (Instance.num_facts state.Maintain.inst);
  ignore (Maintain.update_db d ~insert:[] ~retract:(atoms "e(b,c)."));
  (* bailout loosened: the cone is most of this tiny instance, and the
     point here is the maintenance path, not the cost model *)
  let st, stats =
    Maintain.apply ~bailout:10. tc_theory ~db:d state ~insert:[]
      ~retract:(atoms "e(b,c).")
  in
  (* e(b,c) and everything transitively through it dies, nothing comes
     back: a-b and c-d are now disconnected *)
  check Alcotest.bool "retraction deleted the cone" true
    (stats.Maintain.deleted >= 4);
  check Alcotest.int "no rederivations possible" 0 stats.Maintain.rederived;
  check Alcotest.int "facts after" 2 (Instance.num_facts st.Maintain.inst)

let test_retract_rederives () =
  (* p(b) has two independent supports; rule order makes the e-rule's
     derivation the recorded one, so retracting e(a,b) must overdelete
     p(b) and the repair round must rederive it from r(c,b) *)
  let theory = th "e(X,Y) -> p(Y). r(X,Y) -> p(Y)." in
  let base = db "e(a,b). r(c,b)." in
  let d = Instance.copy base in
  let state = Maintain.saturate theory d in
  ignore (Maintain.update_db d ~insert:[] ~retract:(atoms "e(a,b)."));
  let st, stats =
    Maintain.apply ~bailout:10. theory ~db:d state ~insert:[]
      ~retract:(atoms "e(a,b).")
  in
  check Alcotest.int "p(b) overdeleted with its support" 2
    stats.Maintain.deleted;
  check Alcotest.int "p(b) rederived from the surviving support" 1
    stats.Maintain.rederived;
  check Alcotest.int "only e(a,b) is net-gone" 2
    (Instance.num_facts st.Maintain.inst)

let test_retract_noops () =
  (* retracting an absent fact, a fact over an unknown constant, or a
     *derived* fact must all be no-ops: retraction is EDB-only *)
  let base = db "e(a,b). e(b,c)." in
  List.iter
    (fun (label, retract) ->
      let d = Instance.copy base in
      let state = Maintain.saturate tc_theory d in
      let n0 = Instance.num_facts state.Maintain.inst in
      ignore (Maintain.update_db d ~insert:[] ~retract);
      let st, stats = Maintain.apply tc_theory ~db:d state ~insert:[] ~retract in
      check Alcotest.int (label ^ ": nothing deleted") 0 stats.Maintain.deleted;
      check Alcotest.bool (label ^ ": no bailout") false
        stats.Maintain.bailed_out;
      check Alcotest.int (label ^ ": instance unchanged") n0
        (Instance.num_facts st.Maintain.inst))
    [
      ("absent", atoms "e(b,a).");
      ("unknown constant", atoms "e(z,z).");
      ("derived, not base", atoms "e(a,c).");
    ]

let test_insert_upgrades_derived_to_given () =
  (* asserting a fact that is currently derived makes it base: a later
     retraction of its original support must not take it down *)
  let theory = th "e(X,Y) -> p(Y)." in
  let d = db "e(a,b)." in
  let state = Maintain.saturate theory d in
  let ins = atoms "p(b)." in
  ignore (Maintain.update_db d ~insert:ins ~retract:[]);
  let state, _ = Maintain.apply theory ~db:d state ~insert:ins ~retract:[] in
  let ret = atoms "e(a,b)." in
  ignore (Maintain.update_db d ~insert:[] ~retract:ret);
  let st, stats = Maintain.apply theory ~db:d state ~insert:[] ~retract:ret in
  check Alcotest.int "only e(a,b) deleted" 1 stats.Maintain.deleted;
  check Alcotest.int "p(b) survives as base" 1
    (Instance.num_facts st.Maintain.inst)

let test_forced_bailout () =
  (* bailout:0. makes any non-empty cone trip the cost model; the
     fallback must still be differentially correct (run_case checks
     bit-identity on the Bailed path) *)
  let base = db "e(a,b). e(b,c). e(c,d)." in
  let v =
    run_case ~bailout:0. "forced bailout" tc_theory base
      ~insert:(atoms "e(d,e).") ~retract:(atoms "e(a,b).")
  in
  check Alcotest.bool "bailed and verified" true (v = Bailed)

let test_truncated_state_rechases () =
  (* a state that never reached fixpoint has incomplete derivation
     records, so any update must fall back to a full re-chase *)
  let theory = th "e(X,Y) -> exists Z. e(Y,Z)." in
  let base = db "e(a,b)." in
  let v =
    run_case ~max_rounds:4 ~max_elements:50 "truncated state" theory base
      ~insert:(atoms "e(b,a).") ~retract:[]
  in
  check Alcotest.bool "truncated state bails" true (v = Bailed)

(* ----------------------------------------------------------------- *)
(* Zoo churn                                                           *)
(* ----------------------------------------------------------------- *)

(* A deterministic batch per entry: retract the first base fact, insert
   two fresh-constant atoms over the first fact's predicate — enough to
   exercise both the delete/rederive and the resumption paths on every
   workload shape in the zoo. *)
let zoo_batch (e : Zoo.entry) =
  match e.Zoo.database with
  | [] -> ([], [])
  | first :: _ ->
      let fresh tag =
        Atom.make (Atom.pred first)
          (List.mapi
             (fun i _ -> Term.cst (Printf.sprintf "zz%s%d" tag i))
             (Atom.args first))
      in
      ([ fresh "a"; fresh "b" ], [ first ])

let test_zoo_churn () =
  let skipped = ref 0 in
  List.iter
    (fun (e : Zoo.entry) ->
      let insert, retract = zoo_batch e in
      match
        run_case e.Zoo.name e.Zoo.theory
          (Zoo.database_instance e)
          ~insert ~retract
      with
      | Checked | Bailed -> ()
      | Skipped -> incr skipped)
    Zoo.all;
  check Alcotest.int "every zoo entry verifiable" 0 !skipped

(* ----------------------------------------------------------------- *)
(* Random sweep                                                        *)
(* ----------------------------------------------------------------- *)

(* Random batches over Gen's signature (binary e/r/f, unary p/q,
   constants a/b/c plus a fresh d): inserts of 1-3 atoms, retracts of
   1-2 — which may or may not name base facts, so no-op retraction is
   fuzzed too. *)
let random_batch ~seed =
  let rng = Random.State.make [| seed; 0xbdd; 0xfc |] in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let consts = [ "a"; "b"; "c"; "d" ] in
  let atom () =
    if Random.State.int rng 3 < 2 then
      Printf.sprintf "%s(%s,%s)."
        (pick [ "e"; "r"; "f" ])
        (pick consts) (pick consts)
    else Printf.sprintf "%s(%s)." (pick [ "p"; "q" ]) (pick consts)
  in
  let batch n =
    atoms (String.concat " " (List.init n (fun _ -> atom ())))
  in
  let insert = batch (1 + Random.State.int rng 3) in
  let retract = batch (1 + Random.State.int rng 2) in
  (insert, retract)

let random_seeds = List.init 60 (fun i -> i * 13)

let test_random_sweep () =
  let checked = ref 0 and bailed = ref 0 and skipped = ref 0 in
  List.iter
    (fun seed ->
      let theory = Gen.random_binary_theory ~rules:4 ~seed () in
      let base = Gen.random_instance ~facts:4 ~seed:(seed + 1000) () in
      let insert, retract = random_batch ~seed in
      match
        run_case ~max_rounds:6 ~max_elements:400
          (Printf.sprintf "seed %d" seed)
          theory base ~insert ~retract
      with
      | Checked -> incr checked
      | Bailed -> incr bailed
      | Skipped -> incr skipped)
    random_seeds;
  (* the sweep must mostly exercise the maintenance path, not the
     bailout; a handful of seeds may exhaust the round cap mid-resume
     (the documented poisoned-state raise) but no more than that *)
  check Alcotest.bool
    (Printf.sprintf "sweep mostly maintained (checked %d bailed %d)"
       !checked !bailed)
    true
    (!checked >= 40);
  check Alcotest.bool
    (Printf.sprintf "sweep almost fully verifiable (skipped %d)" !skipped)
    true (!skipped <= 5)

let test_sequential_batches () =
  (* five batches applied to one evolving state; after each, the state
     must still match a from-scratch chase, and the absolute round
     counter must be monotone *)
  List.iter
    (fun seed ->
      let theory = Gen.random_binary_theory ~rules:4 ~seed () in
      let d = Gen.random_instance ~facts:4 ~seed:(seed + 1000) () in
      let state =
        ref (Maintain.saturate ~max_rounds:6 ~max_elements:400 theory d)
      in
      let last_round = ref !state.Maintain.rounds in
      for batch = 0 to 4 do
        let insert, retract = random_batch ~seed:((seed * 31) + batch) in
        ignore (Maintain.update_db d ~insert ~retract);
        let st, _ =
          Maintain.apply ~max_rounds:6 ~max_elements:400 theory ~db:d !state
            ~insert ~retract
        in
        check Alcotest.bool
          (Printf.sprintf "seed %d batch %d: rounds monotone" seed batch)
          true
          (st.Maintain.rounds >= !last_round);
        last_round := st.Maintain.rounds;
        state := st
      done;
      let scratch = Chase.run ~max_rounds:6 ~max_elements:400 theory d in
      match (!state.Maintain.outcome, scratch.Chase.outcome) with
      | Chase.Fixpoint, Chase.Fixpoint ->
          check Alcotest.bool
            (Printf.sprintf "seed %d: final hom both ways" seed)
            true
            (H.exists !state.Maintain.inst scratch.Chase.instance
            && H.exists scratch.Chase.instance !state.Maintain.inst)
      | _ -> ())
    [ 2; 9; 23; 41 ]

(* ----------------------------------------------------------------- *)
(* Strategy bit-identity                                               *)
(* ----------------------------------------------------------------- *)

let test_strategy_bit_identity () =
  (* PR 8's contract: Parallel rounds replay adds sequentially, so the
     record stream — and hence maintenance — is bit-identical to
     Seminaive: same facts, same null ids, same stats *)
  List.iter
    (fun seed ->
      let theory = Gen.random_binary_theory ~rules:4 ~seed () in
      let base = Gen.random_instance ~facts:4 ~seed:(seed + 1000) () in
      let insert, retract = random_batch ~seed in
      let go strategy =
        let d = Instance.copy base in
        let state =
          Maintain.saturate ~strategy ~max_rounds:6 ~max_elements:400 theory d
        in
        ignore (Maintain.update_db d ~insert ~retract);
        match
          Maintain.apply ~strategy ~max_rounds:6 ~max_elements:400 theory
            ~db:d state ~insert ~retract
        with
        | exception Budget.Exhausted r ->
            Error (Budget.resource_name r)
        | st, stats -> Ok (st, stats)
      in
      match (go Chase.Seminaive, go (Chase.Parallel 4)) with
      | Error a, Error b ->
          (* the poisoned-state raise itself must be bit-identical *)
          check Alcotest.string
            (Printf.sprintf "seed %d: same exhaustion" seed)
            a b
      | Error _, Ok _ | Ok _, Error _ ->
          Alcotest.failf "seed %d: strategies disagree on exhaustion" seed
      | Ok (st_s, stats_s), Ok (st_p, stats_p) ->
      check Alcotest.bool
        (Printf.sprintf "seed %d: facts bit-identical" seed)
        true
        (Instance.equal_facts st_s.Maintain.inst st_p.Maintain.inst);
      check
        Alcotest.(list int)
        (Printf.sprintf "seed %d: stats identical" seed)
        [
          stats_s.Maintain.deleted;
          stats_s.Maintain.rederived;
          stats_s.Maintain.inserted;
          stats_s.Maintain.resumed_rounds;
          (if stats_s.Maintain.bailed_out then 1 else 0);
        ]
        [
          stats_p.Maintain.deleted;
          stats_p.Maintain.rederived;
          stats_p.Maintain.inserted;
          stats_p.Maintain.resumed_rounds;
          (if stats_p.Maintain.bailed_out then 1 else 0);
        ])
    [ 0; 13; 26; 39; 52 ]

(* ----------------------------------------------------------------- *)
(* Budget exhaustion: poisoned-state determinism                       *)
(* ----------------------------------------------------------------- *)

let trap_theory =
  th
    {| e(X,Y), e(Y,Z) -> e(X,Z).
       e(X,Y) -> p(Y). |}

let test_fuel_trap_determinism () =
  (* a forced exhaustion mid-maintenance must (a) surface as
     Budget.Exhausted — never a silently half-maintained state — and
     (b) trip the same resource at the same point on every replay and
     under both strategies *)
  let base = db "e(a,b). e(b,c). e(c,d). e(d,e)." in
  let insert = atoms "e(e,f)." and retract = atoms "e(b,c)." in
  let run strategy after =
    let d = Instance.copy base in
    let state =
      Maintain.saturate ~strategy ~max_rounds:12 trap_theory d
    in
    ignore (Maintain.update_db d ~insert ~retract);
    let b = Budget.with_fuel_trap ~after (Budget.v ()) in
    match
      Maintain.apply ~strategy ~budget:b ~max_rounds:12 ~bailout:10.
        trap_theory ~db:d state ~insert ~retract
    with
    | exception Budget.Exhausted r -> "raised:" ^ Budget.resource_name r
    | _, stats -> if stats.Maintain.bailed_out then "bailed" else "done"
  in
  List.iter
    (fun after ->
      let first = run Chase.Seminaive after in
      check Alcotest.string
        (Printf.sprintf "trap %d: replay deterministic" after)
        first
        (run Chase.Seminaive after);
      check Alcotest.string
        (Printf.sprintf "trap %d: identical across strategies" after)
        first
        (run (Chase.Parallel 4) after))
    [ 1; 2; 3; 5; 8 ];
  (* and at least one of those trap points must actually have tripped *)
  check Alcotest.bool "tight trap trips" true
    (String.length (run Chase.Seminaive 1) > 6
    && String.sub (run Chase.Seminaive 1) 0 7 = "raised:")

let test_deadline_exhaustion () =
  (* an already-expired deadline: apply must raise rather than return a
     half-maintained state *)
  let d = db "e(a,b). e(b,c). e(c,d)." in
  let state = Maintain.saturate trap_theory d in
  let retract = atoms "e(b,c)." in
  ignore (Maintain.update_db d ~insert:[] ~retract);
  let b = Budget.with_deadline_s (-1.) (Budget.v ()) in
  match
    Maintain.apply ~budget:b ~bailout:10. trap_theory ~db:d state ~insert:[]
      ~retract
  with
  | exception Budget.Exhausted Budget.Deadline -> ()
  | exception Budget.Exhausted r ->
      Alcotest.failf "expected deadline, tripped %s" (Budget.resource_name r)
  | _ -> Alcotest.fail "expired deadline did not raise"

(* ----------------------------------------------------------------- *)
(* Obs counter reconciliation                                          *)
(* ----------------------------------------------------------------- *)

let test_obs_counters_reconcile () =
  let before = Obs.Metrics.snapshot () in
  let d = db "e(a,b). e(b,c). e(c,d)." in
  let state = Maintain.saturate tc_theory d in
  let insert = atoms "e(d,e)." and retract = atoms "e(a,b)." in
  ignore (Maintain.update_db d ~insert ~retract);
  let _, stats = Maintain.apply tc_theory ~db:d state ~insert ~retract in
  let after = Obs.Metrics.snapshot () in
  let delta name =
    Option.value (Obs.Metrics.find_int after name) ~default:0
    - Option.value (Obs.Metrics.find_int before name) ~default:0
  in
  check Alcotest.int "maintain.runs" 1 (delta "maintain.runs");
  check Alcotest.int "maintain.facts_deleted" stats.Maintain.deleted
    (delta "maintain.facts_deleted");
  check Alcotest.int "maintain.facts_rederived" stats.Maintain.rederived
    (delta "maintain.facts_rederived");
  check Alcotest.int "maintain.facts_inserted" stats.Maintain.inserted
    (delta "maintain.facts_inserted");
  check Alcotest.int "maintain.rounds_resumed" stats.Maintain.resumed_rounds
    (delta "maintain.rounds_resumed");
  check Alcotest.int "maintain.bailouts" 0 (delta "maintain.bailouts")

(* ----------------------------------------------------------------- *)

let suite =
  ( "maintain",
    [
      tc "insert-only batch resumes semi-naive" test_insert_resumes;
      tc "retraction deletes the derived cone" test_retract_shrinks;
      tc "overdeleted facts rederive from survivors" test_retract_rederives;
      tc "retraction is EDB-only and absent-safe" test_retract_noops;
      tc "asserting a derived fact upgrades it to base"
        test_insert_upgrades_derived_to_given;
      tc "cost-model bailout is bit-identical to re-chase"
        test_forced_bailout;
      tc "truncated states re-chase on update" test_truncated_state_rechases;
      tc "zoo churn: hom-equivalent both ways" test_zoo_churn;
      tc "random sweep: 60 seeds x random batches" test_random_sweep;
      tc "sequential batches track the evolving db" test_sequential_batches;
      tc "Seminaive and Parallel maintain bit-identically"
        test_strategy_bit_identity;
      tc "fuel traps are deterministic and raise" test_fuel_trap_determinism;
      tc "expired deadline raises, never half-maintains"
        test_deadline_exhaustion;
      tc "obs counters reconcile with batch stats"
        test_obs_counters_reconcile;
    ] )
