(* Differential oracle for the parallel chase: [Parallel n] must be
   *bit-identical* to the sequential [Seminaive] strategy — not merely
   isomorphic.  The engine root-splits each compiled plan's first access
   path and replays all candidates on the coordinating domain in the
   sequential enumeration order (DESIGN.md section 11), so the fact set
   (including the labelled nulls' element ids), every birth stamp, the
   per-round counts, the watch round and the budget trip points must all
   coincide exactly, for every domain count and under any scheduling.

   The oracle therefore uses [Instance.equal_facts] (id-exact) plus
   per-fact birth comparison, where the naive/semi-naive differential
   suite has to settle for hom-both-ways.  Against [Naive] only
   hom-equivalence is available, as ever.

   The chaos half is metamorphic: a seeded shuffle of the pool's
   work-claim order plus injected per-job busy-wait delays must be
   observationally inert — same merged instance, same registry totals —
   because job results are index-addressed and the merge is replayed in
   job order, never completion order. *)

open Bddfc_budget
open Bddfc_logic
open Bddfc_structure
open Bddfc_chase
open Bddfc_workload
module H = Bddfc_hom.Hom
module Obs = Bddfc_obs.Obs

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let th src = Parser.parse_theory src
let db src = Instance.of_atoms (Parser.parse_atoms src)

let domain_counts = [ 1; 2; 4; 8 ]

let outcome_str = function
  | Chase.Fixpoint -> "fixpoint"
  | Chase.Watched -> "watched"
  | Chase.Exhausted r -> "exhausted:" ^ Budget.resource_name r

(* Bit-identity: fact sets with element ids, births, rounds, outcomes. *)
let check_identical name (a : Chase.result) (b : Chase.result) =
  check Alcotest.string (name ^ ": outcome") (outcome_str a.Chase.outcome)
    (outcome_str b.Chase.outcome);
  check Alcotest.int (name ^ ": rounds") a.Chase.rounds b.Chase.rounds;
  check
    Alcotest.(list int)
    (name ^ ": new facts per round")
    a.Chase.new_facts_per_round b.Chase.new_facts_per_round;
  check
    Alcotest.(option int)
    (name ^ ": watch round")
    a.Chase.watch_round b.Chase.watch_round;
  check Alcotest.int (name ^ ": elements")
    (Instance.num_elements a.Chase.instance)
    (Instance.num_elements b.Chase.instance);
  check Alcotest.bool (name ^ ": fact sets id-identical") true
    (Instance.equal_facts a.Chase.instance b.Chase.instance);
  Instance.iter_facts
    (fun f ->
      let ba = Instance.fact_birth a.Chase.instance f in
      let bb = Instance.fact_birth b.Chase.instance f in
      if ba <> bb then
        Alcotest.failf "%s: %s born %d vs %d" name (Fact.show f) ba bb)
    a.Chase.instance

(* ----------------------------------------------------------------- *)
(* Zoo workloads: every domain count against the sequential engine    *)
(* ----------------------------------------------------------------- *)

let test_zoo_identical () =
  List.iter
    (fun (e : Zoo.entry) ->
      let d = Zoo.database_instance e in
      let go strategy =
        Chase.run ~strategy ~max_rounds:8 ~max_elements:2_000 e.Zoo.theory d
      in
      let reference = go Chase.Seminaive in
      List.iter
        (fun n ->
          check_identical
            (Printf.sprintf "%s @%d" e.Zoo.name n)
            reference
            (go (Chase.Parallel n)))
        domain_counts)
    Zoo.all

let test_zoo_oblivious_identical () =
  List.iter
    (fun (e : Zoo.entry) ->
      let d = Zoo.database_instance e in
      let go strategy =
        Chase.run ~variant:Chase.Oblivious ~strategy ~max_rounds:5
          ~max_elements:2_000 e.Zoo.theory d
      in
      let reference = go Chase.Seminaive in
      List.iter
        (fun n ->
          check_identical
            (Printf.sprintf "%s/oblivious @%d" e.Zoo.name n)
            reference
            (go (Chase.Parallel n)))
        [ 2; 4 ])
    Zoo.all

let test_zoo_naive_hom () =
  (* against the snapshot reference only isomorphism is meaningful: the
     naive strategy enumerates in a different order, so nulls differ *)
  List.iter
    (fun (e : Zoo.entry) ->
      let d = Zoo.database_instance e in
      let go strategy =
        Chase.run ~strategy ~max_rounds:8 ~max_elements:2_000 e.Zoo.theory d
      in
      let a = go Chase.Naive and b = go (Chase.Parallel 4) in
      check Alcotest.int (e.Zoo.name ^ ": rounds") a.Chase.rounds
        b.Chase.rounds;
      check Alcotest.int (e.Zoo.name ^ ": facts")
        (Instance.num_facts a.Chase.instance)
        (Instance.num_facts b.Chase.instance);
      check Alcotest.int (e.Zoo.name ^ ": elements")
        (Instance.num_elements a.Chase.instance)
        (Instance.num_elements b.Chase.instance);
      check Alcotest.bool (e.Zoo.name ^ ": hom naive -> parallel") true
        (H.exists a.Chase.instance b.Chase.instance);
      check Alcotest.bool (e.Zoo.name ^ ": hom parallel -> naive") true
        (H.exists b.Chase.instance a.Chase.instance))
    Zoo.all

(* ----------------------------------------------------------------- *)
(* Random theories: 100 seeds, every domain count                     *)
(* ----------------------------------------------------------------- *)

let random_seeds = List.init 100 (fun i -> i)

let random_case seed =
  ( Gen.random_binary_theory ~rules:4 ~seed (),
    Gen.random_instance ~facts:4 ~seed:(seed + 1000) () )

let test_random_identical () =
  let reference =
    List.map
      (fun seed ->
        let theory, d = random_case seed in
        Chase.run ~max_rounds:6 ~max_elements:400 theory d)
      random_seeds
  in
  (* domain count in the outer loop so the shared pool resizes four
     times, not four hundred *)
  List.iter
    (fun n ->
      List.iter2
        (fun seed r ->
          let theory, d = random_case seed in
          check_identical
            (Printf.sprintf "seed %d @%d" seed n)
            r
            (Chase.run ~strategy:(Chase.Parallel n) ~max_rounds:6
               ~max_elements:400 theory d))
        random_seeds reference)
    domain_counts

let test_random_watch_identical () =
  List.iter
    (fun seed ->
      let theory, d = random_case seed in
      match Signature.preds (Theory.signature theory) with
      | [] -> ()
      | p :: _ ->
          let go strategy =
            Chase.run ~strategy ~watch:p ~max_rounds:6 ~max_elements:400
              theory d
          in
          check_identical
            (Printf.sprintf "seed %d watch" seed)
            (go Chase.Seminaive)
            (go (Chase.Parallel 4)))
    (List.init 25 (fun i -> i * 4))

(* ----------------------------------------------------------------- *)
(* Registry counters: totals independent of the domain count          *)
(* ----------------------------------------------------------------- *)

(* The per-domain shards merge additively at the round barrier, and the
   root-split enumeration performs the same probes and index operations
   as the monolithic walk, so the core counter deltas must be equal
   across every domain count — and equal to sequential Seminaive.  The
   plan-cache counters are exempt: the parallel round prepares each
   rule's plan once, where the sequential witness checks re-fetch it per
   binding, so [eval.plan_cache_hits] legitimately differs. *)
let core_counters =
  [ "chase.rounds";
    "chase.facts_added";
    "chase.nulls_invented";
    "eval.join_probes";
    "eval.index_ops";
  ]

let counter_deltas run =
  let before = Obs.Metrics.snapshot () in
  ignore (run ());
  let after = Obs.Metrics.snapshot () in
  let delta = Obs.Metrics.ints_delta ~before ~after in
  List.map
    (fun k -> (k, Option.value ~default:0 (List.assoc_opt k delta)))
    core_counters

let counter_workloads () =
  let tc_theory = th "e(X,Y), e(Y,Z) -> e(X,Z)." in
  let linear =
    th {| e(X,Y) -> exists Z. e(Y,Z).
          e(X,Y), e(Y,Z) -> p(X,Z). |}
  in
  [ ("tc/digraph", tc_theory,
     Gen.random_digraph ~nodes:40 ~edges:80 ~seed:7 (), 64);
    ("linear", linear, db "e(a,b). e(b,c).", 12);
  ]

let test_counters_equal () =
  List.iter
    (fun (name, theory, d, max_rounds) ->
      let deltas strategy =
        counter_deltas (fun () ->
            Chase.run ~strategy ~max_rounds ~max_elements:2_000 theory d)
      in
      let reference = deltas Chase.Seminaive in
      List.iter
        (fun n ->
          check
            Alcotest.(list (pair string int))
            (Printf.sprintf "%s: counters @%d vs sequential" name n)
            reference
            (deltas (Chase.Parallel n)))
        [ 2; 4; 8 ];
      check Alcotest.bool (name ^ ": sharding off outside rounds") false
        (Obs.Metrics.Shard.active ()))
    (counter_workloads ())

(* ----------------------------------------------------------------- *)
(* Chaos: scheduling perturbations are observationally inert          *)
(* ----------------------------------------------------------------- *)

let with_chaos c f =
  Shard.set_chaos (Some c);
  Fun.protect ~finally:(fun () -> Shard.set_chaos None) f

let test_chaos_inert () =
  List.iter
    (fun (name, theory, d, max_rounds) ->
      let go () =
        Chase.run ~strategy:(Chase.Parallel 4) ~max_rounds
          ~max_elements:2_000 theory d
      in
      let reference = go () in
      let reference_counters = counter_deltas go in
      List.iter
        (fun chaos_seed ->
          List.iter
            (fun chaos_max_delay_us ->
              with_chaos { Shard.chaos_seed; chaos_max_delay_us } (fun () ->
                  let tag =
                    Printf.sprintf "%s chaos %d/%dus" name chaos_seed
                      chaos_max_delay_us
                  in
                  check_identical tag reference (go ());
                  check
                    Alcotest.(list (pair string int))
                    (tag ^ ": counters")
                    reference_counters (counter_deltas go)))
            [ 0; 200 ])
        [ 1; 7; 42 ])
    (counter_workloads ())

(* ----------------------------------------------------------------- *)
(* Budgets: trip points replay identically                            *)
(* ----------------------------------------------------------------- *)

let trap_theory =
  th {| e(X,Y) -> exists Z. e(Y,Z).
        e(X,Y), e(Y,Z) -> p(X,Z). |}

let test_fuel_trap_identical () =
  (* all governor charges happen in the coordinator's canonical replay,
     so a forced exhaustion at the k-th charge leaves the *same* partial
     instance behind as the sequential engine — bit for bit — and
     surfaces as the same structured outcome, never a raw exception *)
  let d = db "e(a,b). e(b,c)." in
  List.iter
    (fun after ->
      let go strategy =
        let b = Budget.with_fuel_trap ~after (Budget.v ()) in
        match Chase.run ~strategy ~budget:b ~max_rounds:12 trap_theory d with
        | exception Budget.Exhausted _ ->
            Alcotest.failf "trap %d leaked Budget.Exhausted" after
        | r -> r
      in
      let reference = go Chase.Seminaive in
      List.iter
        (fun n ->
          check_identical
            (Printf.sprintf "trap %d @%d" after n)
            reference
            (go (Chase.Parallel n)))
        [ 2; 4 ])
    [ 1; 2; 3; 5; 8; 13; 21; 34 ]

let test_fuel_trap_chaos_identical () =
  (* worker scheduling cannot move the trip point: charges replay on the
     coordinator in job order regardless of who computed what when *)
  let d = db "e(a,b). e(b,c)." in
  List.iter
    (fun after ->
      let go () =
        let b = Budget.with_fuel_trap ~after (Budget.v ()) in
        Chase.run ~strategy:(Chase.Parallel 4) ~budget:b ~max_rounds:12
          trap_theory d
      in
      let reference = go () in
      List.iter
        (fun chaos_seed ->
          with_chaos { Shard.chaos_seed; chaos_max_delay_us = 150 } (fun () ->
              check_identical
                (Printf.sprintf "trap %d chaos %d" after chaos_seed)
                reference (go ())))
        [ 3; 11 ])
    [ 2; 5; 13 ]

let test_deadline_structured () =
  (* an expired deadline surfaces as the structured Deadline outcome from
     the parallel engine too (workers poll the non-raising probe and
     bail; the coordinator's canonical check reports) — and never hangs
     the pool *)
  List.iter
    (fun strategy ->
      let b = Budget.v ~deadline_s:0.0 () in
      Unix.sleepf 0.002;
      let r =
        Chase.run ~strategy ~budget:b ~max_rounds:12 trap_theory
          (db "e(a,b). e(b,c).")
      in
      check Alcotest.string "deadline outcome" "exhausted:deadline"
        (outcome_str r.Chase.outcome))
    [ Chase.Seminaive; Chase.Parallel 4 ]

(* ----------------------------------------------------------------- *)
(* Entry points beyond [run]                                          *)
(* ----------------------------------------------------------------- *)

let test_other_entry_points () =
  let tc_theory = th "e(X,Y), e(Y,Z) -> e(X,Z)." in
  let d = Gen.chain ~len:20 () in
  let a = Chase.saturate_datalog ~strategy:Chase.Seminaive tc_theory d in
  let b = Chase.saturate_datalog ~strategy:(Chase.Parallel 4) tc_theory d in
  check_identical "saturate_datalog" a b;
  let a = Chase.run_depth ~strategy:Chase.Seminaive ~depth:3 trap_theory
      (db "e(a,b).")
  and b = Chase.run_depth ~strategy:(Chase.Parallel 4) ~depth:3 trap_theory
      (db "e(a,b).")
  in
  check_identical "run_depth" a b;
  let q = Parser.parse_query "? p(X,Z)." in
  let certainty strategy =
    match
      Chase.certain ~strategy ~max_rounds:8 ~max_elements:200 trap_theory
        (db "e(a,b). e(b,c).") q
    with
    | Chase.Entailed k -> Printf.sprintf "entailed:%d" k
    | Chase.Not_entailed -> "not-entailed"
    | Chase.Unknown (r, k) ->
        Printf.sprintf "unknown:%s:%d" (Budget.resource_name r) k
  in
  check Alcotest.string "certain" (certainty Chase.Seminaive)
    (certainty (Chase.Parallel 4));
  List.iter
    (fun seed ->
      let theory, d = random_case seed in
      let go strategy =
        Provenance.run ~strategy ~max_rounds:5 ~max_elements:300 theory d
      in
      let a = go Chase.Seminaive and b = go (Chase.Parallel 4) in
      check Alcotest.int
        (Printf.sprintf "seed %d: provenance facts" seed)
        (Instance.num_facts a.Provenance.instance)
        (Instance.num_facts b.Provenance.instance);
      check Alcotest.int
        (Printf.sprintf "seed %d: provenance rounds" seed)
        a.Provenance.rounds b.Provenance.rounds)
    [ 0; 5; 10 ]

let test_parallel_one_is_sequential () =
  (* [Parallel 1] must take the literal sequential path: no pool, no
     sharded counters, same everything *)
  let theory, d = random_case 13 in
  let a = Chase.run ~max_rounds:6 ~max_elements:400 theory d in
  let seen0 = Obs.Metrics.Shard.domains_seen () in
  let b =
    Chase.run ~strategy:(Chase.Parallel 1) ~max_rounds:6 ~max_elements:400
      theory d
  in
  check_identical "parallel 1" a b;
  check Alcotest.int "no sharding engaged" seen0
    (Obs.Metrics.Shard.domains_seen ())

(* ----------------------------------------------------------------- *)
(* Phase-discipline sanitizer                                         *)
(* ----------------------------------------------------------------- *)

let with_check b f =
  Shard.Check.override := Some b;
  Shard.Check.reset ();
  Fun.protect
    ~finally:(fun () ->
      Shard.Check.override := None;
      Shard.Check.reset ())
    f

let test_check_inert_when_off () =
  (* the checker must be a no-op unless asked for: zero checks recorded
     and bit-identical results, even under chaos scheduling *)
  let theory, d = random_case 21 in
  let go () =
    Chase.run ~strategy:(Chase.Parallel 4) ~max_rounds:6 ~max_elements:400
      theory d
  in
  let reference = go () in
  with_check false (fun () ->
      check Alcotest.bool "checker reports off" false (Shard.Check.enabled ());
      with_chaos { Shard.chaos_seed = 5; chaos_max_delay_us = 150 } (fun () ->
          check_identical "check off under chaos" reference (go ()));
      check Alcotest.int "no checks recorded" 0 (Shard.Check.count ()))

let test_check_clean_when_on () =
  (* the engine itself honours the discipline: with the checker armed,
     chased workloads (chaos included) raise no Violation, record a
     positive check count, and stay bit-identical to the unchecked run *)
  let theory, d = random_case 21 in
  let go () =
    Chase.run ~strategy:(Chase.Parallel 4) ~max_rounds:6 ~max_elements:400
      theory d
  in
  let reference = go () in
  with_check true (fun () ->
      check Alcotest.bool "checker reports on" true (Shard.Check.enabled ());
      check_identical "checked run" reference (go ());
      let n = Shard.Check.count () in
      if n <= 0 then Alcotest.failf "expected checks, recorded %d" n;
      with_chaos { Shard.chaos_seed = 9; chaos_max_delay_us = 150 } (fun () ->
          check_identical "checked run under chaos" reference (go ())))

let test_check_violations_raise () =
  with_check true (fun () ->
      (* a worker observing a post-snapshot mutation *)
      Shard.Check.phase_a ~facts:10 ~elements:3;
      (try
         Shard.Check.observe ~facts:11 ~elements:3;
         Alcotest.fail "mutated snapshot not flagged"
       with Shard.Check.Violation _ -> ());
      Shard.Check.observe ~facts:10 ~elements:3;
      (* a mutation from a non-coordinating domain *)
      let worker = Domain.spawn (fun () -> Shard.Check.mutating ()) in
      (try
         Domain.join worker;
         Alcotest.fail "off-coordinator mutation not flagged"
       with Shard.Check.Violation _ -> ());
      (* the coordinator itself may mutate between batches *)
      Shard.Check.mutating ())

let test_check_violation_crosses_pool () =
  (* a Violation raised inside a pool job is re-raised from [run] on the
     coordinating domain, like any job failure *)
  with_check true (fun () ->
      Shard.Check.phase_a ~facts:1 ~elements:1;
      let pool = Shard.create 2 in
      Fun.protect
        ~finally:(fun () -> Shard.shutdown pool)
        (fun () ->
          try
            Shard.run pool ~njobs:4 (fun _ ->
                Shard.Check.observe ~facts:2 ~elements:1);
            Alcotest.fail "Violation swallowed by the pool"
          with Shard.Check.Violation _ -> ()))

let suite =
  ( "parallel",
    [ tc "zoo: every domain count bit-identical to seminaive"
        test_zoo_identical;
      tc "zoo: oblivious variant bit-identical" test_zoo_oblivious_identical;
      tc "zoo: hom-equivalent to the naive reference" test_zoo_naive_hom;
      tc "random theories: 100 seeds bit-identical at 1/2/4/8 domains"
        test_random_identical;
      tc "random theories: watch rounds identical" test_random_watch_identical;
      tc "registry counters: totals independent of domain count"
        test_counters_equal;
      tc "chaos: shuffled scheduling and injected delays are inert"
        test_chaos_inert;
      tc "fuel traps: trip points replay bit-identically"
        test_fuel_trap_identical;
      tc "fuel traps: chaos cannot move the trip point"
        test_fuel_trap_chaos_identical;
      tc "deadline: structured outcome, pool never hangs"
        test_deadline_structured;
      tc "saturate/run_depth/certain/provenance agree"
        test_other_entry_points;
      tc "parallel 1 is the sequential path" test_parallel_one_is_sequential;
      tc "shard check: inert when off" test_check_inert_when_off;
      tc "shard check: engine passes with checker armed"
        test_check_clean_when_on;
      tc "shard check: violations raise" test_check_violations_raise;
      tc "shard check: violations cross the pool barrier"
        test_check_violation_crosses_pool;
    ] )
