(* The budget governor and graceful degradation across every engine.

   The contract under test: whatever budget trips — deadline, any fuel
   counter, or the injected fuel trap — every engine terminates with a
   structured outcome naming the tripped resource and best-effort partial
   results.  No uncaught exceptions, no hangs. *)

open Bddfc_budget
open Bddfc_logic
open Bddfc_structure
open Bddfc_chase
open Bddfc_rewriting
open Bddfc_ptp
open Bddfc_finitemodel
open Bddfc_workload

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let th src = Parser.parse_theory src
let db src = Instance.of_atoms (Parser.parse_atoms src)
let q src = Parser.parse_query src

(* The canonical non-terminating theory: an infinite forward chain. *)
let diverging = "e(X,Y) -> exists Z. e(Y,Z)."

let resource = Alcotest.testable Budget.pp_resource ( = )

(* ------------------------- the governor itself ------------------------ *)

let test_fuel_charging () =
  let b = Budget.v ~rounds:3 () in
  check (Alcotest.option Alcotest.int) "initial fuel" (Some 3)
    (Budget.remaining_fuel b Budget.Rounds);
  (match Budget.run b (fun () -> Budget.charge b Budget.Rounds 2) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "2 of 3 should fit");
  check (Alcotest.option Alcotest.int) "fuel decremented" (Some 1)
    (Budget.remaining_fuel b Budget.Rounds);
  (* uncounted resources are free *)
  (match Budget.run b (fun () -> Budget.charge b Budget.Nodes 1_000_000) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "no node pool: charge is free");
  match Budget.run b (fun () -> Budget.charge b Budget.Rounds 2) with
  | Error r -> check resource "rounds tripped" Budget.Rounds r
  | Ok () -> Alcotest.fail "2 of 1 must trip"

let test_cap_is_local () =
  let b = Budget.v ~rounds:10 () in
  let c = Budget.cap ~rounds:3 b in
  (match Budget.run c (fun () -> Budget.charge c Budget.Rounds 3) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "the cap holds 3");
  (* the ceiling is a fresh counter: the parent pool is untouched *)
  check (Alcotest.option Alcotest.int) "parent unscathed" (Some 10)
    (Budget.remaining_fuel b Budget.Rounds);
  check (Alcotest.option Alcotest.int) "cap never exceeds parent" (Some 5)
    (Budget.remaining_fuel (Budget.cap ~rounds:99 (Budget.v ~rounds:5 ()))
       Budget.Rounds)

let test_exhausted_now_probe () =
  let b = Budget.v ~rounds:1 () in
  check (Alcotest.option resource) "fresh budget" None (Budget.exhausted_now b);
  (match Budget.run b (fun () -> Budget.charge b Budget.Rounds 1) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "first charge fits");
  check (Alcotest.option resource) "probe sees the dry pool"
    (Some Budget.Rounds) (Budget.exhausted_now b)

let test_fuel_trap_deterministic () =
  (* the (n+1)-th charge point trips, whatever pools exist *)
  let trip_at n =
    let b = Budget.with_fuel_trap ~after:n (Budget.v ()) in
    let count = ref 0 in
    match
      Budget.run b (fun () ->
          for _ = 1 to 100 do
            Budget.charge b Budget.Rounds 1;
            incr count
          done)
    with
    | Error _ -> !count
    | Ok () -> Alcotest.fail "the trap must trip within 100 charges"
  in
  check Alcotest.int "after:0 trips immediately" 0 (trip_at 0);
  check Alcotest.int "after:7 allows 7 charges" 7 (trip_at 7)

(* ------------------------------- chase -------------------------------- *)

let test_chase_deadline () =
  let t0 = Unix.gettimeofday () in
  let r =
    Chase.run ~budget:(Budget.v ~deadline_s:0.05 ()) ~max_rounds:1_000_000
      ~max_elements:max_int (th diverging) (db "e(a,b).")
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match r.Chase.outcome with
  | Chase.Exhausted Budget.Deadline -> ()
  | o -> Alcotest.failf "expected deadline, got %a" Chase.pp_outcome o);
  check Alcotest.bool "stopped promptly" true (elapsed < 5.0);
  check Alcotest.bool "partial rounds recorded" true (r.Chase.rounds > 0);
  check Alcotest.bool "partial instance kept" true
    (Instance.num_facts r.Chase.instance > 1)

let test_chase_element_fuel () =
  let r =
    Chase.run ~budget:(Budget.v ~elements:5 ()) ~max_rounds:1_000
      (th diverging) (db "e(a,b).")
  in
  (match r.Chase.outcome with
  | Chase.Exhausted Budget.Elements -> ()
  | o -> Alcotest.failf "expected elements, got %a" Chase.pp_outcome o);
  (* 2 base elements + the 5 fueled nulls, nothing more *)
  check Alcotest.int "element fuel respected" 7
    (Instance.num_elements r.Chase.instance)

let test_chase_round_fuel () =
  let r =
    Chase.run ~budget:(Budget.v ~rounds:4 ()) (th diverging) (db "e(a,b).")
  in
  (match r.Chase.outcome with
  | Chase.Exhausted Budget.Rounds -> ()
  | o -> Alcotest.failf "expected rounds, got %a" Chase.pp_outcome o);
  check Alcotest.int "exactly 4 rounds ran" 4 r.Chase.rounds

let test_run_depth_element_fuel_applies () =
  (* run_depth historically passed max_elements:max_int, silently
     defeating any element budget; the governor must now apply *)
  let r =
    Chase.run_depth ~budget:(Budget.v ~elements:3 ()) ~depth:1_000
      (th diverging) (db "e(a,b).")
  in
  match r.Chase.outcome with
  | Chase.Exhausted Budget.Elements -> ()
  | o -> Alcotest.failf "expected elements, got %a" Chase.pp_outcome o

let test_certain_reports_budget () =
  match
    Chase.certain ~budget:(Budget.v ~rounds:5 ()) (th diverging)
      (db "e(a,b).") (q "? e(X,X).")
  with
  | Chase.Unknown (Budget.Rounds, 5) -> ()
  | Chase.Unknown (r, k) ->
      Alcotest.failf "expected Unknown (rounds, 5), got Unknown (%a, %d)"
        Budget.pp_resource r k
  | Chase.Entailed _ | Chase.Not_entailed ->
      Alcotest.fail "the diverging chase cannot conclude in 5 rounds"

let test_provenance_budget () =
  let p =
    Provenance.run ~budget:(Budget.v ~rounds:3 ()) (th diverging)
      (db "e(a,b).")
  in
  check Alcotest.bool "not saturated" false p.Provenance.saturated;
  check (Alcotest.option resource) "tripped rounds" (Some Budget.Rounds)
    p.Provenance.tripped;
  check Alcotest.int "partial rounds recorded" 3 p.Provenance.rounds

(* ------------------------------ rewriting ------------------------------ *)

let test_rewrite_step_fuel () =
  (* with both endpoints frozen as answer variables, transitivity makes
     the rewriting diverge: paths of every length become disjuncts *)
  let t = th "e(X,Y), e(Y,Z) -> e(X,Z)." in
  let r =
    Rewrite.rewrite ~max_disjuncts:100_000 ~max_steps:50 ~max_disjunct_vars:64
      t (q "?(X,Y) e(X,Y).")
  in
  check Alcotest.bool "incomplete" false r.Rewrite.complete;
  check (Alcotest.option resource) "step fuel tripped"
    (Some Budget.Rewrite_steps) r.Rewrite.tripped;
  check Alcotest.bool "partial UCQ kept" true (r.Rewrite.ucq <> [])

let test_rewrite_deadline_via_governor () =
  let t = th "e(X,Y), e(Y,Z) -> e(X,Z)." in
  let b = Budget.with_fuel_trap ~after:10 (Budget.v ()) in
  let r =
    Rewrite.rewrite ~budget:b ~max_disjuncts:100_000 ~max_steps:1_000_000
      ~max_disjunct_vars:64 t (q "?(X,Y) e(X,Y).")
  in
  check Alcotest.bool "incomplete under the trap" false r.Rewrite.complete;
  check Alcotest.bool "tripped recorded" true (r.Rewrite.tripped <> None)

let test_kappa_tripped_propagates () =
  let t = th "e(X,Y), e(Y,Z) -> e(X,Z)." in
  let k = Rewrite.kappa ~max_steps:20 ~max_disjuncts:100_000 t in
  check Alcotest.bool "not all complete" false k.Rewrite.all_complete;
  check Alcotest.bool "tripped recorded" true (k.Rewrite.tripped <> None)

(* ----------------------------- refinement ------------------------------ *)

let test_refine_trap_partial () =
  let chain = Gen.null_chain ~consts:1 ~len:30 () in
  let g = Bgraph.make chain in
  let full = Refine.compute ~mode:Refine.Backward ~depth:8 g in
  (* allow the initial classes and two steps, then trip *)
  let b = Budget.with_fuel_trap ~after:2 (Budget.v ()) in
  let partial = Refine.compute ~mode:Refine.Backward ~budget:b ~depth:8 g in
  check Alcotest.bool "tripped recorded" true (partial.Refine.tripped <> None);
  check Alcotest.bool "coarser or equal partition" true
    (partial.Refine.num_classes <= full.Refine.num_classes);
  check Alcotest.bool "classes still cover the graph" true
    (Array.length partial.Refine.cls = Bgraph.size g)

(* ---------------------------- naive search ----------------------------- *)

let test_naive_node_fuel () =
  let e = Option.get (Zoo.find "sec55") in
  match
    Naive.search ~budget:(Budget.v ~nodes:50 ()) e.Zoo.theory
      (Zoo.database_instance e) e.Zoo.query
  with
  | Naive.Budget_out { tripped; nodes } ->
      check resource "node fuel tripped" Budget.Nodes tripped;
      check Alcotest.bool "node count plausible" true (nodes > 0 && nodes <= 51)
  | Naive.Found _ -> Alcotest.fail "sec55 has no countermodel"
  | Naive.Exhausted -> Alcotest.fail "50 nodes cannot exhaust sec55's space"

let test_exhaustive_absence_trap () =
  let e = Option.get (Zoo.find "sec55") in
  match
    Naive.exhaustive_absence
      ~budget:(Budget.with_fuel_trap ~after:5 (Budget.v ()))
      ~max_candidates:20 ~max_extra:1 e.Zoo.theory (Zoo.database_instance e)
      e.Zoo.query
  with
  | Naive.Absence_exhausted _ -> ()
  | _ -> Alcotest.fail "the trap must stop the enumeration inconclusively"

(* ------------------------------ pipeline ------------------------------- *)

let test_pipeline_deadline_terminates () =
  (* the acceptance check: a non-terminating instance under --timeout
     stops within the deadline plus one check interval *)
  let e = Option.get (Zoo.find "sec55") in
  let params =
    { Pipeline.default_params with
      budget = Some (Budget.v ~deadline_s:0.2 ());
      chase_depth = 1_000_000;
      depth_growth = [ 1; 2; 4 ];
    }
  in
  let t0 = Unix.gettimeofday () in
  let outcome =
    Pipeline.construct ~params e.Zoo.theory (Zoo.database_instance e)
      e.Zoo.query
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  check Alcotest.bool "terminated promptly" true (elapsed < 10.0);
  match outcome with
  | Pipeline.Unknown _ -> ()
  | Pipeline.Model _ -> Alcotest.fail "sec55 has no countermodel"
  | Pipeline.Query_entailed _ -> Alcotest.fail "the chase never derives Phi"

let test_pipeline_fuel_exhaustion_is_unknown () =
  let e = Option.get (Zoo.find "sec55") in
  let params =
    { Pipeline.default_params with
      budget = Some (Budget.v ~elements:10 ());
      depth_growth = [ 1 ];
    }
  in
  match
    Pipeline.construct ~params e.Zoo.theory (Zoo.database_instance e)
      e.Zoo.query
  with
  | Pipeline.Unknown _ -> ()
  | _ -> Alcotest.fail "10 elements of fuel cannot settle sec55"

(* The semi-naive trap sweep: force exhaustion at every charge point of
   a delta-driven chase.  The engine must never leak Budget.Exhausted,
   and the committed prefix must be consistent — every stamped round is
   complete or absent, i.e. the facts born in the fully executed rounds
   are exactly those of an untrapped chase of that depth. *)
let test_seminaive_fuel_trap_sweep () =
  (* existential growth and a datalog closure rule, so the trap can land
     mid-delta in either kind of work *)
  let t = th "e(X,Y) -> exists Z. e(Y,Z). e(X,Y), e(Y,Z) -> p(X,Z)." in
  let d = db "e(a,b). e(b,c)." in
  for n = 0 to 60 do
    let b = Budget.with_fuel_trap ~after:n (Budget.v ()) in
    match
      Chase.run ~strategy:Chase.Seminaive ~budget:b ~max_rounds:10 t d
    with
    | exception exn ->
        Alcotest.failf "trap %d escaped the chase: %s" n
          (Printexc.to_string exn)
    | r ->
        (* births never exceed the round being executed when the trap hit *)
        Instance.iter_facts
          (fun f ->
            let birth = Instance.fact_birth r.Chase.instance f in
            if birth < 0 || birth > r.Chase.rounds + 1 then
              Alcotest.failf "trap %d: birth %d outside %d rounds" n birth
                r.Chase.rounds)
          r.Chase.instance;
        (* the fully executed rounds match an untrapped run of that depth *)
        let complete =
          match r.Chase.outcome with
          | Chase.Exhausted _ -> max 0 (r.Chase.rounds - 1)
          | _ -> r.Chase.rounds
        in
        if complete > 0 then begin
          let reference = Chase.run_depth ~depth:complete t d in
          let prefix =
            List.filter
              (fun f -> Instance.fact_birth r.Chase.instance f <= complete)
              (Instance.facts r.Chase.instance)
          in
          check Alcotest.int
            (Printf.sprintf "trap %d: committed prefix facts" n)
            (Instance.num_facts reference.Chase.instance)
            (List.length prefix)
        end
  done

(* The tentpole fault-injection sweep: force exhaustion at the N-th
   budget charge point, for N across the whole pipeline run.  Whatever
   stage the trap lands in, construct must degrade to a structured
   outcome — never raise — and any Model it does produce must verify. *)
let test_pipeline_fuel_trap_sweep () =
  let e = Option.get (Zoo.find "ex1") in
  let d = Zoo.database_instance e in
  for n = 0 to 40 do
    let params =
      { Pipeline.default_params with
        budget = Some (Budget.with_fuel_trap ~after:n (Budget.v ()));
        depth_growth = [ 1 ];
      }
    in
    match Pipeline.construct ~params e.Zoo.theory d e.Zoo.query with
    | Pipeline.Model (cert, _) ->
        check Alcotest.bool
          (Printf.sprintf "trap %d: model verifies" n)
          true (Certificate.is_valid cert)
    | Pipeline.Unknown _ -> ()
    | Pipeline.Query_entailed _ ->
        Alcotest.failf "trap %d: ex1's query is not certain" n
    | exception exn ->
        Alcotest.failf "trap %d escaped: %s" n (Printexc.to_string exn)
  done

let test_judge_fuel_trap_never_raises () =
  let e = Option.get (Zoo.find "sec55") in
  let d = Zoo.database_instance e in
  List.iter
    (fun n ->
      let budget =
        { Judge.default_budget with
          pipeline_params =
            { Pipeline.default_params with
              budget = Some (Budget.with_fuel_trap ~after:n (Budget.v ()));
              depth_growth = [ 1 ];
            };
        }
      in
      match Judge.judge ~budget e.Zoo.theory d e.Zoo.query with
      | v -> (
          match v.Judge.evidence with
          | Judge.Witness _ -> Alcotest.failf "trap %d: sec55 has no model" n
          | Judge.Certain _ -> Alcotest.failf "trap %d: Phi is not certain" n
          | Judge.No_small_model _ | Judge.Open _ -> ())
      | exception exn ->
          Alcotest.failf "trap %d escaped judge: %s" n (Printexc.to_string exn))
    [ 0; 3; 17; 100; 1_000 ]

(* --------------------------- observability ----------------------------- *)

module Obs = Bddfc_obs.Obs

(* Every exhaustion funnels through [trip]: the registry counter moves
   whether or not tracing is on, and under a collector the structured
   [budget.tripped] event names the resource that fired. *)
let test_trip_telemetry () =
  let tripped_delta f =
    let before = Obs.Metrics.snapshot () in
    f ();
    let after = Obs.Metrics.snapshot () in
    Option.value ~default:0
      (List.assoc_opt "budget.tripped_total"
         (Obs.Metrics.ints_delta ~before ~after))
  in
  (* trace off: the counter still counts *)
  Obs.Trace.set_sink None;
  let d =
    tripped_delta (fun () ->
        ignore
          (Chase.run
             ~budget:(Budget.v ~rounds:2 ())
             (th diverging) (db "e(a,b).")))
  in
  check Alcotest.int "counter moves with tracing off" 1 d;
  (* trace on: same counter movement plus the structured event *)
  let c = Obs.Trace.install_collector () in
  let d =
    tripped_delta (fun () ->
        ignore
          (Chase.run
             ~budget:(Budget.v ~rounds:2 ())
             (th diverging) (db "e(a,b).")))
  in
  Obs.Trace.set_sink None;
  check Alcotest.int "counter moves with tracing on" 1 d;
  (match Obs.Trace.find_events (Obs.Trace.root c) "budget.tripped" with
  | [ attrs ] ->
      check Alcotest.bool "event names the tripped resource" true
        (List.assoc_opt "resource" attrs
        = Some (Obs.Str (Budget.resource_name Budget.Rounds)))
  | l -> Alcotest.failf "expected 1 budget.tripped event, got %d"
           (List.length l));
  (* the injected fault goes through the same funnel *)
  let c = Obs.Trace.install_collector () in
  let b = Budget.with_fuel_trap ~after:0 (Budget.v ()) in
  (match Budget.run b (fun () -> Budget.charge b Budget.Nodes 1) with
  | Error Budget.Nodes -> ()
  | Error r -> Alcotest.failf "trap blamed %a" Budget.pp_resource r
  | Ok () -> Alcotest.fail "an after:0 trap must trip at once");
  Obs.Trace.set_sink None;
  check Alcotest.int "trap emits the event too" 1
    (List.length (Obs.Trace.find_events (Obs.Trace.root c) "budget.tripped"))

let suite =
  ( "budget",
    [ tc "fuel charging and exhaustion" test_fuel_charging;
      tc "caps are local ceilings" test_cap_is_local;
      tc "exhausted_now probe" test_exhausted_now_probe;
      tc "fuel trap is deterministic" test_fuel_trap_deterministic;
      tc "chase: deadline" test_chase_deadline;
      tc "chase: element fuel" test_chase_element_fuel;
      tc "chase: round fuel" test_chase_round_fuel;
      tc "chase: run_depth element hole closed"
        test_run_depth_element_fuel_applies;
      tc "chase: semi-naive fuel-trap sweep" test_seminaive_fuel_trap_sweep;
      tc "chase: certain reports the tripped budget"
        test_certain_reports_budget;
      tc "provenance: budget recorded" test_provenance_budget;
      tc "rewrite: step fuel" test_rewrite_step_fuel;
      tc "rewrite: trap via governor" test_rewrite_deadline_via_governor;
      tc "kappa: tripped propagates" test_kappa_tripped_propagates;
      tc "refine: trap yields a sound partial" test_refine_trap_partial;
      tc "naive: node fuel" test_naive_node_fuel;
      tc "naive: exhaustive trap" test_exhaustive_absence_trap;
      tc "pipeline: deadline terminates" test_pipeline_deadline_terminates;
      tc "pipeline: fuel exhaustion is Unknown"
        test_pipeline_fuel_exhaustion_is_unknown;
      tc "pipeline: fault-injection sweep" test_pipeline_fuel_trap_sweep;
      tc "judge: fault injection never raises"
        test_judge_fuel_trap_never_raises;
      tc "trip telemetry: counter always, event under tracing"
        test_trip_telemetry;
    ] )
