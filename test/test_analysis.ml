(* Unit tests for Bddfc_analysis: the located-diagnostic analyzer, its
   witnesses, and the acyclicity pre-flight that upgrades verdicts. *)

open Bddfc_logic
open Bddfc_analysis
module D = Diagnostic
module A = Analyzer
module Budget = Bddfc_budget.Budget
module Pipeline = Bddfc_finitemodel.Pipeline
module Zoo = Bddfc_workload.Zoo

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f
let th src = Parser.parse_theory src
let prog src = Parser.parse_program src
let codes ds = List.map (fun d -> d.D.code) ds

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let witness_of code ds =
  match A.find_code code ds with Some d -> d.D.witness | None -> ""

(* ---------------- edge cases ---------------- *)

let test_empty_theory () =
  check (Alcotest.list Alcotest.string) "no diagnostics" []
    (codes (A.analyze_theory (Theory.make [])))

let test_zero_ary () =
  (* 0-ary predicates have no positions and no variables: every check
     must pass through them without an exception or a spurious report *)
  let r =
    Rule.make ~name:"r0"
      ~body:[ Atom.app "start" [] ]
      ~head:[ Atom.app "goal" [] ]
      ()
  in
  check (Alcotest.list Alcotest.string) "0-ary clean" []
    (codes (A.analyze_theory (Theory.make [ r ])))

let test_constant_in_existential_head () =
  let ds = A.analyze_theory (th "p(X) -> exists Z. r(c,Z).") in
  check Alcotest.bool "not ♠5-normalized" true
    (A.has_code A.Codes.not_normalized ds);
  check Alcotest.bool "witness names the head atom" true
    (let w = witness_of A.Codes.not_normalized ds in
     contains ~affix:"r(c, Z)" w
     || contains ~affix:"r(c,Z)" w);
  (* X occurs only in the body: also a singleton *)
  check Alcotest.bool "singleton reported" true
    (A.has_code A.Codes.singleton_var ds)

let test_body_head_disjoint () =
  (* body and head share no variables; X is erased and repeated, which
     is exactly a sticky-marking violation, and nothing crashes *)
  let ds = A.analyze_theory (th "p(X,X) -> q(c).") in
  check Alcotest.bool "not sticky" true (A.has_code A.Codes.not_sticky ds);
  check Alcotest.bool "no errors or warnings" true
    (let c = D.count ds in c.D.errors = 0 && c.D.warnings = 0)

let test_sec55_clean_but_cyclic () =
  (* the Section 5.5 non-FC theory is well-written — no hygiene findings
     — yet carries the explicit special-edge cycle witness *)
  let e = Option.get (Zoo.find "sec55") in
  let ds = A.analyze_theory e.Zoo.theory in
  let c = D.count ds in
  check Alcotest.int "0 errors" 0 c.D.errors;
  check Alcotest.int "0 warnings" 0 c.D.warnings;
  check Alcotest.bool "wa-cycle reported" true (A.has_code A.Codes.wa_cycle ds);
  check Alcotest.bool "cycle witness shows the special edge" true
    (contains ~affix:"=(" (witness_of A.Codes.wa_cycle ds));
  check Alcotest.bool "ja-cycle reported" true (A.has_code A.Codes.ja_cycle ds)

(* ---------------- hygiene checks ---------------- *)

let test_arity_mismatch () =
  let ds = A.analyze (A.of_program (prog "p(a). p(b,c).")) in
  check Alcotest.int "one error" 1 (D.count ds).D.errors;
  check Alcotest.bool "arity code" true (A.has_code A.Codes.arity_mismatch ds)

let test_edb_gating () =
  let src = "p(a). u(X) -> v(X). ? v(X)." in
  let ds = A.analyze (A.of_program (prog src)) in
  check Alcotest.bool "undefined u" true (A.has_code A.Codes.undefined_pred ds);
  check Alcotest.bool "unreachable v" true
    (A.has_code A.Codes.query_unreachable ds);
  check Alcotest.bool "unused p" true (A.has_code A.Codes.unused_pred ds);
  (* the same rules without the EDB: those three checks must not fire *)
  let ds' = A.analyze_theory (th "u(X) -> v(X).") in
  check Alcotest.bool "no EDB checks on bare theories" false
    (List.exists
       (fun c -> A.has_code c ds')
       [ A.Codes.undefined_pred; A.Codes.query_unreachable;
         A.Codes.unused_pred ])

let test_underscore_exemption () =
  let ds = A.analyze_theory (th "e(_X,Y) -> exists Z. e(Y,Z).") in
  check Alcotest.bool "no singleton for _X" false
    (A.has_code A.Codes.singleton_var ds)

(* ---------------- sticky marking trace ---------------- *)

let test_sticky_trace () =
  (* r1 erases X at p[1]; r2's head p(V,U) propagates the mark to s[2];
     r3 repeats A across the marked position: a 2-step provenance *)
  let t =
    th
      {|
        p(X,Y) -> q(Y).
        s(U,V), t(U) -> p(V,U).
        s(A,A) -> q(A).
      |}
  in
  match A.sticky_violations t with
  | [] -> Alcotest.fail "expected a sticky violation"
  | v :: _ ->
      check Alcotest.int "2-step trace" 2 (List.length v.A.trace);
      check Alcotest.bool "base case is an erasure" true
        (contains ~affix:"erases"
           (List.nth v.A.trace (List.length v.A.trace - 1)));
      check Alcotest.bool "propagation step present" true
        (contains ~affix:"through marked head position"
           (List.hd v.A.trace));
      (* the delegated recognizer agrees *)
      check Alcotest.bool "Sticky.is_sticky delegates" false
        (Bddfc_classes.Sticky.is_sticky t)

(* ---------------- report consistency ---------------- *)

let test_report_matches_details () =
  (* every false field of every zoo report is witnessed by its code *)
  let open Bddfc_classes.Recognize in
  List.iter
    (fun (e : Zoo.entry) ->
      let r = report e.Zoo.theory in
      let expect field code =
        check Alcotest.bool
          (Fmt.str "%s: %s matches details" e.Zoo.name code)
          (not field)
          (A.has_code code r.details)
      in
      expect r.binary A.Codes.non_binary;
      expect r.single_head A.Codes.multi_head;
      expect r.linear A.Codes.non_linear;
      expect r.guarded A.Codes.non_guarded;
      expect r.sticky A.Codes.not_sticky;
      expect r.frontier_one A.Codes.non_frontier_one;
      expect r.weakly_acyclic A.Codes.wa_cycle;
      expect r.jointly_acyclic A.Codes.ja_cycle;
      expect r.normalized A.Codes.not_normalized)
    Zoo.all

(* ---------------- source locations ---------------- *)

let test_loc_threading () =
  let p = prog "p(a).\nq(X) -> p(X).\n" in
  (match p.Parser.facts with
  | [ f ] ->
      check Alcotest.int "fact line" 1 (Loc.line (Atom.loc f));
      check Alcotest.int "fact col" 1 (Loc.col (Atom.loc f))
  | _ -> Alcotest.fail "one fact expected");
  match p.Parser.rules with
  | [ r ] ->
      check Alcotest.int "rule line" 2 (Loc.line (Rule.loc r));
      let head = List.hd (Rule.head r) in
      check Alcotest.int "head atom line" 2 (Loc.line (Atom.loc head));
      check Alcotest.int "head atom col" 9 (Loc.col (Atom.loc head));
      (* locations are metadata: structural equality ignores them *)
      let r' = Parser.parse_rule "q(X) -> p(X)." in
      check Alcotest.bool "atom equality ignores locs" true
        (Atom.equal head (List.hd (Rule.head r')))
  | _ -> Alcotest.fail "one rule expected"

(* ---------------- rendering ---------------- *)

let test_json_escape () =
  check Alcotest.string "escapes" {|a\"b\\c\nd|}
    (D.json_escape "a\"b\\c\nd")

let test_ordering () =
  let d ~loc ~severity code =
    D.v ~loc ~code ~severity ~witness:"" "m"
  in
  let early = d ~loc:(Loc.make ~line:1 ~col:1) ~severity:D.Warning "b" in
  let err = d ~loc:(Loc.make ~line:1 ~col:1) ~severity:D.Error "z" in
  let late = d ~loc:(Loc.make ~line:9 ~col:1) ~severity:D.Error "a" in
  let nowhere = d ~loc:Loc.none ~severity:D.Error "a" in
  let sorted = List.sort D.compare [ nowhere; late; early; err ] in
  check (Alcotest.list Alcotest.string) "position-major, errors first"
    [ "z"; "b"; "a"; "a" ]
    (codes sorted);
  check Alcotest.bool "unlocated sorts last" true
    (List.nth sorted 3 == nowhere)

(* ---------------- the pre-flight upgrade ---------------- *)

let starvation_budget () =
  Budget.v ~rounds:2 ~elements:2 ~facts:2 ~rewrite_steps:2 ~refine_steps:2
    ~nodes:2 ()

let test_preflight_upgrades () =
  (* under a starvation fuel budget the weakly-acyclic entry is Unknown
     without the pre-flight and definitely decided with it *)
  let e = Option.get (Zoo.find "weakly_acyclic") in
  let db = Zoo.database_instance e in
  let run preflight =
    let params =
      { Pipeline.default_params with
        budget = Some (starvation_budget ());
        preflight;
      }
    in
    Pipeline.construct ~params e.Zoo.theory db e.Zoo.query
  in
  (match run false with
  | Pipeline.Unknown (_, st) ->
      check Alcotest.bool "fuel tripped" true (st.Pipeline.tripped <> None)
  | _ -> Alcotest.fail "expected Unknown without the pre-flight");
  match run true with
  | Pipeline.Model (cert, st) ->
      check Alcotest.bool "verified" true
        (Bddfc_finitemodel.Certificate.is_valid cert);
      check Alcotest.bool "stats record the proof" true
        st.Pipeline.preflight_terminating;
      check (Alcotest.option Alcotest.int) "the chase itself is the model"
        (Some 0) st.Pipeline.n_used
  | _ -> Alcotest.fail "expected a definite Model with the pre-flight"

let test_preflight_skips_cyclic () =
  (* a non-acyclic theory must not enter the fuel-free path *)
  let e = Option.get (Zoo.find "sec55") in
  let db = Zoo.database_instance e in
  let params =
    { Pipeline.default_params with budget = Some (starvation_budget ()) }
  in
  match Pipeline.construct ~params e.Zoo.theory db e.Zoo.query with
  | Pipeline.Unknown (_, st) ->
      check Alcotest.bool "not marked terminating" false
        st.Pipeline.preflight_terminating
  | Pipeline.Query_entailed _ -> Alcotest.fail "sec55 query is not certain"
  | Pipeline.Model _ -> Alcotest.fail "sec55 has no small countermodel"

let test_judge_chase_terminating () =
  let e = Option.get (Zoo.find "weakly_acyclic") in
  let db = Zoo.database_instance e in
  let v = Bddfc_finitemodel.Judge.judge e.Zoo.theory db e.Zoo.query in
  check Alcotest.bool "judge marks the chase terminating" true
    v.Bddfc_finitemodel.Judge.chase_terminating;
  let e' = Option.get (Zoo.find "sec55") in
  let db' = Zoo.database_instance e' in
  let v' = Bddfc_finitemodel.Judge.judge e'.Zoo.theory db' e'.Zoo.query in
  check Alcotest.bool "sec55 is not" false
    v'.Bddfc_finitemodel.Judge.chase_terminating

(* ---------------- position dataflow ---------------- *)

module Df = Dataflow
module Chase = Bddfc_chase.Chase
module Instance = Bddfc_structure.Instance

let pred = Pred.make
let pset names = Pred.Set.of_list (List.map (fun (n, a) -> pred n a) names)

let pset_str s =
  String.concat ","
    (List.sort String.compare
       (List.map Pred.name (Pred.Set.elements s)))

let test_df_graph () =
  let g = Df.build (th "p(X) -> exists Y. e(X,Y). e(_X,Y) -> q(Y).") in
  (* the null-flow closure: Y is born at e[2] and flows on to q[1] *)
  check Alcotest.bool "e[2] nullable" true (Df.nullable g (pred "e" 2, 1));
  check Alcotest.bool "q[1] nullable" true (Df.nullable g (pred "q" 1, 0));
  check Alcotest.bool "p[1] finite-range" true
    (Df.finite_range g (pred "p" 1, 0));
  check Alcotest.bool "e[1] finite-range" true
    (Df.finite_range g (pred "e" 2, 0));
  check Alcotest.int "all positions" 4 (List.length (Df.positions g));
  (* predicate edges: rule 1 contributes both a regular p -> e edge
     (the frontier X) and a special one (the existential Y); rule 2 a
     regular e -> q edge — special and regular flows stay separate *)
  (match g.Df.pred_edges with
  | [ pe_reg; pe_sp; eq ] ->
      check Alcotest.string "src" "p" (Pred.name pe_reg.Df.src);
      check Alcotest.string "dst" "e" (Pred.name pe_reg.Df.dst);
      check Alcotest.bool "p -> e frontier edge regular" false
        pe_reg.Df.special;
      check Alcotest.bool "p -> e existential edge special" true
        pe_sp.Df.special;
      check
        Alcotest.(list (triple int int string))
        "special witness: p[1] to e[2] via Y"
        [ (0, 1, "Y") ]
        pe_sp.Df.via;
      check Alcotest.bool "e -> q regular" false eq.Df.special;
      check
        Alcotest.(list (triple int int string))
        "e -> q witness: e[2] to q[1] via Y"
        [ (1, 0, "Y") ]
        eq.Df.via
  | es -> Alcotest.failf "expected 3 predicate edges, got %d" (List.length es))

let test_df_reachability () =
  let t =
    th {| e(X,Y) -> p(X).
          ghost(X) -> q(X).
          p(X), q(X) -> both(X). |}
  in
  check Alcotest.string "implicit EDB" "e,ghost"
    (pset_str (Df.implicit_edb t));
  let edb = pset [ ("e", 2) ] in
  check Alcotest.string "reachable from e" "e,p"
    (pset_str (Df.reachable_from ~edb t));
  let l = Df.liveness ~edb t in
  check Alcotest.int "one live rule" 1 (List.length l.Df.live);
  (match l.Df.dead with
  | [ (_, b1); (_, b2) ] ->
      check Alcotest.string "ghost blocks rule 2" "ghost" (Pred.name b1);
      check Alcotest.string "q blocks rule 3" "q" (Pred.name b2)
  | ds -> Alcotest.failf "expected 2 dead rules, got %d" (List.length ds));
  (* with ghost in the EDB everything lives *)
  let l' = Df.liveness ~edb:(pset [ ("e", 2); ("ghost", 1) ]) t in
  check Alcotest.int "no dead rules" 0 (List.length l'.Df.dead)

let two_component_theory =
  {| e(X,Y), e(Y,Z) -> e(X,Z).
     e(X,Y) -> reach(Y).
     f(U,V), f(V,W) -> f(U,W).
     f(U,V) -> far(V). |}

let test_df_slice () =
  let t = th two_component_theory in
  let q = Parser.parse_query "? reach(X)." in
  let sl = Df.slice t (Ucq.of_cq q) in
  check Alcotest.bool "proper" true (Df.is_proper sl);
  check Alcotest.int "kept the e-component" 2 (List.length sl.Df.kept);
  check Alcotest.int "dropped the f-component" 2 (List.length sl.Df.dropped);
  check Alcotest.string "relevant set" "e,reach" (pset_str sl.Df.relevant);
  check Alcotest.int "sliced theory size" 2 (Theory.size sl.Df.sliced);
  (* a query spanning both components keeps everything *)
  let q' = Parser.parse_query "? reach(X), far(Y)." in
  let sl' = Df.slice t (Ucq.of_cq q') in
  check Alcotest.bool "nothing to drop" false (Df.is_proper sl')

let test_df_slice_strong_closure () =
  (* the kept rule's whole head joins the relevant set: the restricted
     chase's witness check reads both head atoms, so c must survive *)
  let t = th "a(X) -> b(X), c(X). c(X) -> d(X)." in
  let sl = Df.slice_preds t (pset [ ("b", 1) ]) in
  check Alcotest.string "b pulls in the whole head" "a,b,c"
    (pset_str sl.Df.relevant);
  check Alcotest.int "kept" 1 (List.length sl.Df.kept);
  (* ... but rules *consuming* c are not pulled in backwards *)
  check Alcotest.int "dropped the c-consumer" 1 (List.length sl.Df.dropped)

let test_df_certain_agrees () =
  let t = th two_component_theory in
  let d =
    Instance.of_atoms
      (Parser.parse_atoms "e(a,b). e(b,c). f(a,b). f(b,c).")
  in
  let q = Parser.parse_query "? reach(c)." in
  let show = function
    | Chase.Entailed k -> Printf.sprintf "entailed:%d" k
    | Chase.Not_entailed -> "not-entailed"
    | Chase.Unknown (r, k) ->
        Printf.sprintf "unknown:%s:%d" (Budget.resource_name r) k
  in
  let full = Chase.run ~max_rounds:8 t d in
  let unsliced = Chase.certain ~max_rounds:8 t d q in
  let sliced = Df.certain ~max_rounds:8 t d q in
  check Alcotest.string "verdicts agree" (show unsliced) (show sliced);
  (* and the slice genuinely chased less: no far-facts were derived *)
  let sl = Df.slice t (Ucq.of_cq q) in
  let r = Chase.run ~max_rounds:8 sl.Df.sliced d in
  check Alcotest.bool "sliced chase is smaller" true
    (Instance.num_facts r.Chase.instance
    < Instance.num_facts full.Chase.instance)

let test_df_analyzer_agreement () =
  (* the lint codes are the user-facing face of Df.liveness: the same
     rules and predicates must be reported by both *)
  let p =
    prog
      {| e(a,b).
         e(X,Y) -> p(X).
         ghost(X) -> q(X).
         ? p(X). |}
  in
  let ds = A.analyze (A.of_program p) in
  check Alcotest.bool "dead-rule" true (A.has_code A.Codes.dead_rule ds);
  check Alcotest.bool "unreachable-predicate" true
    (A.has_code A.Codes.unreachable_predicate ds);
  check Alcotest.bool "ghost named" true
    (contains ~affix:"ghost" (witness_of A.Codes.dead_rule ds));
  let t = Theory.make p.Parser.rules in
  let edb = pset [ ("e", 2) ] in
  let l = Df.liveness ~edb t in
  check Alcotest.int "liveness agrees: one dead rule" 1
    (List.length l.Df.dead);
  check Alcotest.string "liveness agrees: ghost blocks it" "ghost"
    (Pred.name (snd (List.hd l.Df.dead)))

let test_df_report_formats () =
  let t = th two_component_theory in
  let q = Parser.parse_query "? reach(X)." in
  let r = Df.report ~facts:(pset [ ("e", 2); ("f", 2) ]) ~queries:[ q ] t in
  let json = Bddfc_obs.Obs.Json.to_string (Df.report_json r) in
  (match Bddfc_obs.Obs.Json.parse json with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "report JSON does not re-parse: %s" e);
  let dot = Df.report_dot r in
  check Alcotest.bool "dot digraph" true (contains ~affix:"digraph" dot);
  check Alcotest.bool "dot has the slice query's pred" true
    (contains ~affix:"reach" dot);
  let text = Fmt.str "%a" Df.pp_report r in
  List.iter
    (fun section ->
      check Alcotest.bool ("text section " ^ section) true
        (contains ~affix:section text))
    [ "== predicates =="; "== null flow =="; "== reachability ==";
      "== rules =="; "== slices ==" ]

let suite =
  ( "analysis",
    [ tc "empty theory is clean" test_empty_theory;
      tc "0-ary predicates" test_zero_ary;
      tc "constant in existential head" test_constant_in_existential_head;
      tc "body and head share no variables" test_body_head_disjoint;
      tc "sec55 lints clean but carries the cycle" test_sec55_clean_but_cyclic;
      tc "arity mismatch is an error" test_arity_mismatch;
      tc "EDB checks gate on edb_known" test_edb_gating;
      tc "underscore exempts singletons" test_underscore_exemption;
      tc "sticky marking provenance" test_sticky_trace;
      tc "report booleans match details" test_report_matches_details;
      tc "locations thread from the parser" test_loc_threading;
      tc "json escaping" test_json_escape;
      tc "diagnostic ordering" test_ordering;
      tc "pre-flight upgrades Unknown to definite" test_preflight_upgrades;
      tc "pre-flight skips cyclic theories" test_preflight_skips_cyclic;
      tc "judge reports chase termination" test_judge_chase_terminating;
      tc "dataflow: graph, null flow, finite range" test_df_graph;
      tc "dataflow: reachability and liveness" test_df_reachability;
      tc "dataflow: query-directed slice" test_df_slice;
      tc "dataflow: slice closure keeps whole heads"
        test_df_slice_strong_closure;
      tc "dataflow: sliced certain agrees and chases less"
        test_df_certain_agrees;
      tc "dataflow: liveness agrees with the lint codes"
        test_df_analyzer_agreement;
      tc "dataflow: report text/json/dot are well-formed"
        test_df_report_formats
    ] )
