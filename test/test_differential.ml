(* Differential oracle for the chase evaluation strategies: the naive
   (snapshot + full re-join) and semi-naive (delta-driven, in-place
   frontier) paths must be observationally identical — same number of
   rounds, same per-round fact counts, same outcome, homomorphically
   equivalent final instances — on every zoo workload and on a sweep of
   random theories, including under a watched predicate and under
   deterministic mid-run fuel traps.

   Why the oracle is hom-both-ways rather than syntactic equality: the
   two strategies may allocate labelled nulls in a different order within
   a round, so instances agree only up to null renaming.  Equal element
   and fact counts plus homomorphisms in both directions pin the
   instances down to isomorphism for our purposes. *)

open Bddfc_budget
open Bddfc_logic
open Bddfc_structure
open Bddfc_chase
open Bddfc_workload
module H = Bddfc_hom.Hom

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let th src = Parser.parse_theory src
let db src = Instance.of_atoms (Parser.parse_atoms src)

let run_both ?variant ?watch ?max_rounds ?max_elements theory base =
  let go strategy =
    Chase.run ?variant ~strategy ?watch ?max_rounds ?max_elements theory base
  in
  (go Chase.Naive, go Chase.Seminaive)

(* The round-by-round agreement every clean (un-trapped) run must show. *)
let check_agree name (a : Chase.result) (b : Chase.result) =
  check Alcotest.int (name ^ ": rounds") a.Chase.rounds b.Chase.rounds;
  check
    Alcotest.(list int)
    (name ^ ": new facts per round")
    a.Chase.new_facts_per_round b.Chase.new_facts_per_round;
  check Alcotest.int (name ^ ": total facts")
    (Instance.num_facts a.Chase.instance)
    (Instance.num_facts b.Chase.instance);
  check Alcotest.int (name ^ ": total elements")
    (Instance.num_elements a.Chase.instance)
    (Instance.num_elements b.Chase.instance);
  check Alcotest.bool (name ^ ": is_model") (Chase.is_model a)
    (Chase.is_model b);
  check
    Alcotest.(option int)
    (name ^ ": watch round")
    a.Chase.watch_round b.Chase.watch_round;
  (* isomorphism up to null renaming: hom both ways on equal counts *)
  check Alcotest.bool
    (name ^ ": hom naive -> seminaive")
    true
    (H.exists a.Chase.instance b.Chase.instance);
  check Alcotest.bool
    (name ^ ": hom seminaive -> naive")
    true
    (H.exists b.Chase.instance a.Chase.instance)

(* ----------------------------------------------------------------- *)
(* Zoo workloads                                                      *)
(* ----------------------------------------------------------------- *)

let test_zoo_agreement () =
  List.iter
    (fun (e : Zoo.entry) ->
      let d = Zoo.database_instance e in
      let a, b =
        run_both ~max_rounds:8 ~max_elements:2_000 e.Zoo.theory d
      in
      check_agree e.Zoo.name a b)
    Zoo.all

let test_zoo_oblivious_agreement () =
  List.iter
    (fun (e : Zoo.entry) ->
      let d = Zoo.database_instance e in
      let a, b =
        run_both ~variant:Chase.Oblivious ~max_rounds:5 ~max_elements:2_000
          e.Zoo.theory d
      in
      check_agree (e.Zoo.name ^ "/oblivious") a b)
    Zoo.all

let test_zoo_saturation_agreement () =
  (* datalog-only saturation must agree too (Naive.search's inner loop) *)
  List.iter
    (fun (e : Zoo.entry) ->
      let d = Zoo.database_instance e in
      let go strategy = Chase.saturate_datalog ~strategy e.Zoo.theory d in
      check_agree (e.Zoo.name ^ "/saturate") (go Chase.Naive)
        (go Chase.Seminaive))
    Zoo.all

(* ----------------------------------------------------------------- *)
(* Random theories: the fuzzing sweep                                 *)
(* ----------------------------------------------------------------- *)

let random_cases = List.init 60 (fun i -> i)

let test_random_agreement () =
  List.iter
    (fun seed ->
      let theory = Gen.random_binary_theory ~rules:4 ~seed () in
      let d = Gen.random_instance ~facts:4 ~seed:(seed + 1000) () in
      let a, b = run_both ~max_rounds:6 ~max_elements:400 theory d in
      check_agree (Printf.sprintf "seed %d" seed) a b)
    random_cases

let test_random_provenance_agreement () =
  (* the provenance replay reaches the same instance either way *)
  List.iter
    (fun seed ->
      let theory = Gen.random_binary_theory ~rules:4 ~seed () in
      let d = Gen.random_instance ~facts:4 ~seed:(seed + 1000) () in
      let go strategy =
        Provenance.run ~strategy ~max_rounds:5 ~max_elements:300 theory d
      in
      let a = go Chase.Naive and b = go Chase.Seminaive in
      check Alcotest.int
        (Printf.sprintf "seed %d: provenance facts" seed)
        (Instance.num_facts a.Provenance.instance)
        (Instance.num_facts b.Provenance.instance);
      check Alcotest.int
        (Printf.sprintf "seed %d: provenance rounds" seed)
        a.Provenance.rounds b.Provenance.rounds)
    (List.init 12 (fun i -> i * 5))

(* ----------------------------------------------------------------- *)
(* Watched predicates                                                 *)
(* ----------------------------------------------------------------- *)

let test_watch_agreement () =
  (* goal appears after a few propagation rounds; both strategies must
     stop at the same watch round *)
  let t =
    th
      {| e(X,Y) -> exists Z. e(Y,Z).
         e(X,Y), e(Y,Z) -> p(X,Z).
         p(X,Y), p(Y,Z) -> goal(X,Z). |}
  in
  let d = db "e(a,b)." in
  let a, b =
    run_both ~watch:(Pred.make "goal" 2) ~max_rounds:20 ~max_elements:200 t d
  in
  check Alcotest.bool "watched" true (a.Chase.outcome = Chase.Watched);
  check_agree "watch" a b;
  (* and on the random sweep, watching a predicate of the signature *)
  List.iter
    (fun seed ->
      let theory = Gen.random_binary_theory ~rules:4 ~seed () in
      let d = Gen.random_instance ~facts:4 ~seed:(seed + 1000) () in
      match Signature.preds (Theory.signature theory) with
      | [] -> ()
      | p :: _ ->
          let a, b =
            run_both ~watch:p ~max_rounds:6 ~max_elements:400 theory d
          in
          check
            Alcotest.(option int)
            (Printf.sprintf "seed %d: watch round" seed)
            a.Chase.watch_round b.Chase.watch_round)
    (List.init 15 (fun i -> i * 3))

(* ----------------------------------------------------------------- *)
(* Fuel traps                                                         *)
(* ----------------------------------------------------------------- *)

let test_round_budget_agreement () =
  (* round-granular budgets stop both strategies at the same prefix, so
     the full agreement oracle applies even to truncated runs *)
  List.iter
    (fun seed ->
      let theory = Gen.random_binary_theory ~rules:4 ~seed () in
      let d = Gen.random_instance ~facts:4 ~seed:(seed + 1000) () in
      List.iter
        (fun rounds ->
          let go strategy =
            Chase.run ~strategy
              ~budget:(Budget.v ~rounds ~elements:400 ())
              theory d
          in
          check_agree
            (Printf.sprintf "seed %d rounds %d" seed rounds)
            (go Chase.Naive) (go Chase.Seminaive))
        [ 1; 2; 3 ])
    (List.init 10 (fun i -> i * 7))

let test_fuel_trap_no_leak () =
  (* a forced exhaustion at every charge point: the semi-naive engine
     must never leak Budget.Exhausted, and every stamped birth must lie
     within the executed rounds *)
  let t =
    th
      {| e(X,Y) -> exists Z. e(Y,Z).
         e(X,Y), e(Y,Z) -> p(X,Z). |}
  in
  let d = db "e(a,b). e(b,c)." in
  List.iter
    (fun after ->
      List.iter
        (fun strategy ->
          let b = Budget.with_fuel_trap ~after (Budget.v ()) in
          match Chase.run ~strategy ~budget:b ~max_rounds:12 t d with
          | exception Budget.Exhausted _ ->
              Alcotest.failf "trap %d leaked Budget.Exhausted" after
          | r ->
              Instance.iter_facts
                (fun f ->
                  let birth = Instance.fact_birth r.Chase.instance f in
                  if birth < 0 || birth > r.Chase.rounds + 1 then
                    Alcotest.failf "trap %d: birth %d outside rounds %d"
                      after birth r.Chase.rounds)
                r.Chase.instance)
        [ Chase.Naive; Chase.Seminaive ])
    [ 1; 2; 3; 5; 8; 13; 21; 34 ]

let test_fuel_trap_prefix_consistent () =
  (* exhaustion mid-delta: the committed prefix (births strictly below
     the last fully executed round) must coincide with an untrapped run
     truncated at that many rounds — every stamped round is complete or
     absent *)
  let t = th "e(X,Y), e(Y,Z) -> e(X,Z)." in
  let d = Gen.chain ~len:12 () in
  List.iter
    (fun after ->
      let b = Budget.with_fuel_trap ~after (Budget.v ()) in
      let trapped = Chase.run ~budget:b ~max_rounds:20 t d in
      let complete = max 0 (trapped.Chase.rounds - 1) in
      if complete > 0 then begin
        let reference = Chase.run ~max_rounds:complete t d in
        let prefix_facts =
          List.filter
            (fun f ->
              Instance.fact_birth trapped.Chase.instance f <= complete)
            (Instance.facts trapped.Chase.instance)
        in
        check Alcotest.int
          (Printf.sprintf "trap %d: committed prefix facts" after)
          (Instance.num_facts reference.Chase.instance)
          (List.length prefix_facts)
      end)
    [ 5; 17; 40; 99; 250 ]

(* ----------------------------------------------------------------- *)
(* Telemetry invariants                                               *)
(* ----------------------------------------------------------------- *)

(* The per-round [chase.round] events and the always-on registry
   counters are two independent views of the same run; here the
   differential oracle is the instance itself.  On a clean (fixpoint or
   watched) run:

     - one event per executed round, numbered 1..rounds in order;
     - the events' facts_added mirror [new_facts_per_round] and sum to
       the final-minus-base fact count;
     - nulls_invented sums to the element delta;
     - per-round join_probes sum to the registry's eval.join_probes
       delta, and the chase.* counters match the result record.

   A budget trip may abandon a partial round that mutated the instance
   and the counters after the last reported event, so exhausted runs
   only get the one-sided bounds. *)

module Obs = Bddfc_obs.Obs

let ev_int name attrs key =
  match List.assoc_opt key attrs with
  | Some (Obs.Int n) -> n
  | _ -> Alcotest.failf "%s: chase.round event lacks int attr %s" name key

let check_telemetry ?strategy name theory d =
  Obs.Trace.set_sink None;
  let before = Obs.Metrics.snapshot () in
  let c = Obs.Trace.install_collector () in
  let r =
    Fun.protect
      ~finally:(fun () -> Obs.Trace.set_sink None)
      (fun () ->
        Chase.run ?strategy ~max_rounds:8 ~max_elements:2_000 theory d)
  in
  let after = Obs.Metrics.snapshot () in
  let delta = Obs.Metrics.ints_delta ~before ~after in
  let reg k = Option.value ~default:0 (List.assoc_opt k delta) in
  let events = Obs.Trace.find_events (Obs.Trace.root c) "chase.round" in
  let col key = List.map (fun a -> ev_int name a key) events in
  let sum key = List.fold_left ( + ) 0 (col key) in
  (* [rounds] counts productive rounds; the record (and the event
     stream) also carries the final empty round that detected the
     fixpoint, so the executed count is the record's length. *)
  let executed = List.length r.Chase.new_facts_per_round in
  check Alcotest.int (name ^ ": one event per executed round") executed
    (List.length events);
  check
    Alcotest.(list int)
    (name ^ ": events in round order")
    (List.init executed (fun i -> i + 1))
    (col "round");
  check
    Alcotest.(list int)
    (name ^ ": facts_added mirrors the result record")
    (List.rev r.Chase.new_facts_per_round)
    (col "facts_added");
  let facts_delta =
    Instance.num_facts r.Chase.instance - List.length r.Chase.base_facts
  in
  let elems_delta =
    Instance.num_elements r.Chase.instance - Instance.num_elements d
  in
  match r.Chase.outcome with
  | Chase.Exhausted _ ->
      (* the trapped partial round mutated state after its event was lost *)
      check Alcotest.bool (name ^ ": facts events bounded by instance") true
        (sum "facts_added" <= facts_delta);
      check Alcotest.bool (name ^ ": nulls events bounded by instance") true
        (sum "nulls_invented" <= elems_delta);
      check Alcotest.bool (name ^ ": probe events bounded by registry") true
        (sum "join_probes" <= reg "eval.join_probes")
  | Chase.Fixpoint | Chase.Watched ->
      check Alcotest.int
        (name ^ ": facts_added sums to the instance delta")
        facts_delta (sum "facts_added");
      check Alcotest.int
        (name ^ ": facts_added sums to the registry counter")
        (reg "chase.facts_added")
        (sum "facts_added");
      check Alcotest.int
        (name ^ ": nulls_invented sums to the element delta")
        elems_delta (sum "nulls_invented");
      check Alcotest.int
        (name ^ ": nulls_invented sums to the registry counter")
        (reg "chase.nulls_invented")
        (sum "nulls_invented");
      check Alcotest.int
        (name ^ ": join_probes sum to the registry delta")
        (reg "eval.join_probes")
        (sum "join_probes");
      check Alcotest.int
        (name ^ ": registry rounds counter matches")
        executed (reg "chase.rounds")

let test_obs_zoo_invariants () =
  List.iter
    (fun (e : Zoo.entry) ->
      check_telemetry e.Zoo.name e.Zoo.theory (Zoo.database_instance e))
    Zoo.all

let test_obs_random_invariants () =
  List.iter
    (fun seed ->
      let theory = Gen.random_binary_theory ~rules:4 ~seed () in
      let d = Gen.random_instance ~facts:4 ~seed:(seed + 1000) () in
      check_telemetry (Printf.sprintf "seed %d" seed) theory d)
    random_cases

let test_obs_parallel_invariants () =
  (* the same event-vs-instance-vs-registry reconciliation through the
     parallel engine: worker counters divert to per-domain shards during
     the fork-join window and merge additively at the round barrier, so
     the [chase.round] events (emitted by the coordinator after the
     merge) and the registry deltas must reconcile exactly as they do for
     the sequential strategy *)
  List.iter
    (fun (e : Zoo.entry) ->
      check_telemetry ~strategy:(Chase.Parallel 4)
        (e.Zoo.name ^ "/parallel") e.Zoo.theory (Zoo.database_instance e))
    Zoo.all;
  List.iter
    (fun seed ->
      let theory = Gen.random_binary_theory ~rules:4 ~seed () in
      let d = Gen.random_instance ~facts:4 ~seed:(seed + 1000) () in
      check_telemetry ~strategy:(Chase.Parallel 4)
        (Printf.sprintf "seed %d/parallel" seed)
        theory d)
    (List.init 20 (fun i -> i * 3))

(* ----------------------------------------------------------------- *)
(* Compiled vs interpreted join engine                                 *)
(* ----------------------------------------------------------------- *)

(* The compiled plans of [Plan] and the reference interpreter must
   enumerate the same solution sets everywhere: plain joins, windowed
   joins, the semi-naive delta decomposition, whole chases under either
   strategy, and budget-trapped runs.  Probe *order* may differ (the
   engines score access paths differently), so solutions are compared as
   sorted sets, and instances with the usual hom-both-ways oracle. *)

module E = Bddfc_hom.Eval

let solution_set ?since engine inst atoms =
  let out = ref [] in
  (match since with
  | None ->
      E.iter_solutions ~engine inst atoms (fun b ->
          out := Smap.bindings b :: !out)
  | Some s ->
      E.iter_solutions_delta ~since:s ~engine inst atoms (fun b ->
          out := Smap.bindings b :: !out));
  List.sort_uniq compare !out

let check_engines_agree name inst atoms ~rounds =
  check
    Alcotest.(list (list (pair string int)))
    (name ^ ": solutions")
    (solution_set E.Interp inst atoms)
    (solution_set E.Compiled inst atoms);
  (* the delta decomposition agrees for every frontier *)
  for since = 1 to min rounds 4 do
    check
      Alcotest.(list (list (pair string int)))
      (Printf.sprintf "%s: delta since %d" name since)
      (solution_set ~since E.Interp inst atoms)
      (solution_set ~since E.Compiled inst atoms)
  done

let test_engine_zoo_solutions () =
  List.iter
    (fun (e : Zoo.entry) ->
      let d = Zoo.database_instance e in
      let r = Chase.run ~max_rounds:6 ~max_elements:2_000 e.Zoo.theory d in
      let inst = r.Chase.instance in
      check_engines_agree e.Zoo.name inst
        (Cq.body e.Zoo.query)
        ~rounds:r.Chase.rounds;
      check
        Alcotest.(list (list int))
        (e.Zoo.name ^ ": answers")
        (List.sort compare (E.answers ~engine:E.Interp inst e.Zoo.query))
        (List.sort compare (E.answers ~engine:E.Compiled inst e.Zoo.query)))
    Zoo.all

let test_engine_random_solutions () =
  (* rule bodies over chased random instances double as a query corpus:
     they mix shared variables, constants and repeated predicates *)
  List.iter
    (fun seed ->
      let theory = Gen.random_binary_theory ~rules:4 ~seed () in
      let d = Gen.random_instance ~facts:4 ~seed:(seed + 1000) () in
      let r = Chase.run ~max_rounds:5 ~max_elements:400 theory d in
      List.iteri
        (fun i rule ->
          check_engines_agree
            (Printf.sprintf "seed %d rule %d" seed i)
            r.Chase.instance (Rule.body rule) ~rounds:r.Chase.rounds)
        (Theory.rules theory))
    random_cases

let test_engine_chase_agreement () =
  (* whole chases driven by either engine are isomorphic, round for
     round, under both strategies *)
  let go ~strategy eval theory d =
    Chase.run ~strategy ~eval ~max_rounds:6 ~max_elements:400 theory d
  in
  List.iter
    (fun seed ->
      let theory = Gen.random_binary_theory ~rules:4 ~seed () in
      let d = Gen.random_instance ~facts:4 ~seed:(seed + 1000) () in
      List.iter
        (fun strategy ->
          check_agree
            (Printf.sprintf "seed %d engines" seed)
            (go ~strategy E.Interp theory d)
            (go ~strategy E.Compiled theory d))
        [ Chase.Naive; Chase.Seminaive ])
    (List.init 20 (fun i -> i * 3))

let test_engine_fuel_trap () =
  (* the compiled engine degrades exactly like the interpreter under
     forced exhaustion: no Budget.Exhausted leak, births in range *)
  let t =
    th
      {| e(X,Y) -> exists Z. e(Y,Z).
         e(X,Y), e(Y,Z) -> p(X,Z). |}
  in
  let d = db "e(a,b). e(b,c)." in
  List.iter
    (fun after ->
      List.iter
        (fun eval ->
          let b = Budget.with_fuel_trap ~after (Budget.v ()) in
          match
            Chase.run ~strategy:Chase.Seminaive ~eval ~budget:b ~max_rounds:12
              t d
          with
          | exception Budget.Exhausted _ ->
              Alcotest.failf "engine trap %d leaked Budget.Exhausted" after
          | r ->
              Instance.iter_facts
                (fun f ->
                  let birth = Instance.fact_birth r.Chase.instance f in
                  if birth < 0 || birth > r.Chase.rounds + 1 then
                    Alcotest.failf "engine trap %d: birth %d outside rounds %d"
                      after birth r.Chase.rounds)
                r.Chase.instance)
        [ E.Compiled; E.Interp ])
    [ 1; 2; 3; 5; 8; 13; 21 ]

let test_engine_round_budget_agreement () =
  (* truncated prefixes agree across engines, not just strategies *)
  List.iter
    (fun seed ->
      let theory = Gen.random_binary_theory ~rules:4 ~seed () in
      let d = Gen.random_instance ~facts:4 ~seed:(seed + 1000) () in
      List.iter
        (fun rounds ->
          let go eval =
            Chase.run ~eval
              ~budget:(Budget.v ~rounds ~elements:400 ())
              theory d
          in
          check_agree
            (Printf.sprintf "seed %d rounds %d engines" seed rounds)
            (go E.Interp) (go E.Compiled))
        [ 1; 2; 3 ])
    (List.init 8 (fun i -> i * 7))

(* ----------------------------------------------------------------- *)
(* Query-directed slicing                                              *)
(* ----------------------------------------------------------------- *)

(* Sliced certain answering against the full chase.  The slicer's
   contract (DESIGN.md section 12): over relevant predicates the sliced
   restricted chase derives the same facts round for round, so an
   [Entailed] verdict carries the identical depth, a full-theory
   [Not_entailed] fixpoint forces a sliced one, and exhaustion can only
   be *upgraded* by the slice (the sliced chase does strictly less work,
   e.g. reaching a fixpoint where the padding rules chased on) — never
   flipped or degraded. *)

module Df = Bddfc_analysis.Dataflow
module Judge = Bddfc_finitemodel.Judge
module Pipeline = Bddfc_finitemodel.Pipeline

let certainty_str = function
  | Chase.Entailed k -> Printf.sprintf "entailed:%d" k
  | Chase.Not_entailed -> "not-entailed"
  | Chase.Unknown (r, k) ->
      Printf.sprintf "unknown:%s:%d" (Budget.resource_name r) k

let check_slice_compatible name unsliced sliced =
  match (unsliced, sliced) with
  | Chase.Entailed a, Chase.Entailed b ->
      check Alcotest.int (name ^ ": entailment depth") a b
  | Chase.Not_entailed, Chase.Not_entailed -> ()
  | Chase.Unknown _, Chase.Not_entailed ->
      (* the slice reached a fixpoint the padded theory could not *)
      ()
  | Chase.Unknown _, Chase.Unknown _ ->
      check Alcotest.string (name ^ ": same exhaustion")
        (certainty_str unsliced) (certainty_str sliced)
  | _ ->
      Alcotest.failf "%s: unsliced %s vs sliced %s" name
        (certainty_str unsliced) (certainty_str sliced)

let test_slice_zoo_certain () =
  List.iter
    (fun (e : Zoo.entry) ->
      let d = Zoo.database_instance e in
      let unsliced =
        Chase.certain ~max_rounds:8 ~max_elements:4_000 e.Zoo.theory d
          e.Zoo.query
      in
      let sliced =
        Df.certain ~max_rounds:8 ~max_elements:4_000 e.Zoo.theory d
          e.Zoo.query
      in
      check_slice_compatible e.Zoo.name unsliced sliced)
    Zoo.all

let test_slice_random_certain () =
  (* rule bodies over random theories double as the query corpus; every
     seed exercises slices from trivial (everything relevant) to proper *)
  List.iter
    (fun seed ->
      let theory = Gen.random_binary_theory ~rules:4 ~seed () in
      let d = Gen.random_instance ~facts:4 ~seed:(seed + 1000) () in
      List.iteri
        (fun i rule ->
          let q = Rule.body_query rule in
          let unsliced =
            Chase.certain ~max_rounds:6 ~max_elements:4_000 theory d q
          in
          let sliced =
            Df.certain ~max_rounds:6 ~max_elements:4_000 theory d q
          in
          check_slice_compatible
            (Printf.sprintf "seed %d rule %d" seed i)
            unsliced sliced)
        (Theory.rules theory))
    random_cases

let test_slice_judge_agreement () =
  (* the pipeline's slice fast path may only change *how fast* a
     certain verdict arrives, never which verdict: judge with slicing on
     agrees with the default on every zoo workload *)
  let evidence_str (v : Judge.verdict) =
    Fmt.str "%a" Judge.pp_evidence v.Judge.evidence
  in
  List.iter
    (fun (e : Zoo.entry) ->
      let d = Zoo.database_instance e in
      let go slice =
        Judge.judge
          ~budget:
            {
              Judge.default_budget with
              pipeline_params = { Pipeline.default_params with slice };
            }
          e.Zoo.theory d e.Zoo.query
      in
      let a = go false and b = go true in
      check Alcotest.string
        (e.Zoo.name ^ ": judge evidence")
        (evidence_str a) (evidence_str b);
      check Alcotest.bool
        (e.Zoo.name ^ ": conjecture_applies")
        a.Judge.conjecture_applies b.Judge.conjecture_applies;
      check Alcotest.bool
        (e.Zoo.name ^ ": chase_terminating")
        a.Judge.chase_terminating b.Judge.chase_terminating)
    Zoo.all

let test_slice_judge_depth_regression () =
  (* a theory that is both certain *and* properly sliceable — the zoo
     has neither, which once hid a depth mismatch: the fast path used a
     raw [Chase.certain] depth, but the pipeline recovers depth from the
     watched round of the *normalized* chase, where spade5's existential
     split lags derivations through witnesses by a round.  The probe now
     goes through the same hide-and-normalize machinery, so both sides
     must report the identical depth. *)
  let t =
    th
      {| e(X,Y) -> exists Z. e(Y,Z).
         e(X,Y), e(Y,Z) -> p(X,Z).
         f(U,V), f(V,W) -> f(U,W). |}
  in
  let d = db "e(a,b). f(a,b). f(b,c)." in
  let q = Parser.parse_query "? p(X,Z)." in
  let sl = Df.slice t (Ucq.of_cq q) in
  check Alcotest.bool "slice is proper (fast path engages)" true
    (Df.is_proper sl);
  let go slice =
    Judge.judge
      ~budget:
        {
          Judge.default_budget with
          pipeline_params = { Pipeline.default_params with slice };
        }
      t d q
  in
  let a = go false and b = go true in
  let evidence_str (v : Judge.verdict) =
    Fmt.str "%a" Judge.pp_evidence v.Judge.evidence
  in
  check Alcotest.string "judge evidence (incl. depth)" (evidence_str a)
    (evidence_str b);
  (match Pipeline.slice_fast_path sl d q with
  | Some (Pipeline.Query_entailed fast_depth) -> (
      match
        Pipeline.construct
          ~params:{ Pipeline.default_params with slice = false }
          t d q
      with
      | Pipeline.Query_entailed full_depth ->
          check Alcotest.int "probe depth = pipeline depth" full_depth
            fast_depth
      | _ -> Alcotest.fail "unsliced pipeline should entail")
  | _ -> Alcotest.fail "fast path should entail on a proper slice")

let test_slice_fuel_trap_deterministic () =
  (* the sliced path charges the same governor the same way on every
     run: a mid-run trap replays identically and never leaks *)
  let t =
    th
      {| e(X,Y) -> exists Z. e(Y,Z).
         e(X,Y), e(Y,Z) -> p(X,Z).
         f(U,V) -> exists W. f(V,W). |}
  in
  let d = db "e(a,b). e(b,c). f(a,b)." in
  let q = Parser.parse_query "? p(X,Z)." in
  List.iter
    (fun after ->
      let go () =
        let b = Budget.with_fuel_trap ~after (Budget.v ()) in
        match Df.certain ~budget:b ~max_rounds:12 t d q with
        | exception Budget.Exhausted _ ->
            Alcotest.failf "sliced trap %d leaked Budget.Exhausted" after
        | c -> certainty_str c
      in
      check Alcotest.string
        (Printf.sprintf "trap %d replays" after)
        (go ()) (go ()))
    [ 1; 2; 3; 5; 8; 13 ]

let suite =
  ( "differential",
    [ tc "zoo: naive vs seminaive agree" test_zoo_agreement;
      tc "zoo: oblivious variant agrees" test_zoo_oblivious_agreement;
      tc "zoo: datalog saturation agrees" test_zoo_saturation_agreement;
      tc "random theories: 60 seeds agree" test_random_agreement;
      tc "random theories: provenance replay agrees"
        test_random_provenance_agreement;
      tc "watch: both strategies stop at the same round" test_watch_agreement;
      tc "round budgets: truncated prefixes agree"
        test_round_budget_agreement;
      tc "fuel traps: no Budget.Exhausted leak, births in range"
        test_fuel_trap_no_leak;
      tc "fuel traps: committed prefix is round-complete"
        test_fuel_trap_prefix_consistent;
      tc "telemetry: zoo events reconcile with instances and registry"
        test_obs_zoo_invariants;
      tc "telemetry: 60 random seeds reconcile" test_obs_random_invariants;
      tc "telemetry: parallel domain shards reconcile"
        test_obs_parallel_invariants;
      tc "engines: zoo solutions and answers agree" test_engine_zoo_solutions;
      tc "engines: 60 random seeds' solution sets agree"
        test_engine_random_solutions;
      tc "engines: chases agree under both strategies"
        test_engine_chase_agreement;
      tc "engines: fuel traps degrade identically" test_engine_fuel_trap;
      tc "engines: round-budget prefixes agree"
        test_engine_round_budget_agreement;
      tc "slicing: zoo certain verdicts compatible" test_slice_zoo_certain;
      tc "slicing: 60 random seeds' verdicts compatible"
        test_slice_random_certain;
      tc "slicing: judge verdicts identical with the fast path on"
        test_slice_judge_agreement;
      tc "slicing: fast-path depth matches the normalized pipeline"
        test_slice_judge_depth_regression;
      tc "slicing: fuel traps replay deterministically, no leak"
        test_slice_fuel_trap_deterministic;
    ] )
