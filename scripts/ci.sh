#!/usr/bin/env bash
# Tier-1 gate: full build, full test suite, then the fault-injection
# suite on its own so a budget regression is visible in the CI log even
# when some other suite breaks first.
set -euo pipefail
cd "$(dirname "$0")/.."

# the dev profile (dune's default) carries -warn-error +a via the root
# env stanza, so any compiler warning fails this build
dune build @all
dune runtest

# source hygiene: no tabs, no trailing whitespace in tracked sources
fmt_bad=$(grep -rln -e '	' -e ' $' \
  --include='*.ml' --include='*.mli' --include='dune' \
  lib bin bench test 2>/dev/null || true)
if [ -n "$fmt_bad" ]; then
  echo "ci: tabs or trailing whitespace in:" >&2
  echo "$fmt_bad" >&2
  exit 1
fi

# the budget / fault-injection suite, explicitly
dune exec test/main.exe -- test budget

# the naive vs semi-naive differential oracle, explicitly
dune exec test/main.exe -- test differential

# the serve robustness suite, explicitly: the isolation barrier,
# fault-injection sweep, eviction, overload and metrics reconciliation
dune exec test/main.exe -- test serve

# the parallel-chase differential/chaos suite, explicitly: bit-identity
# to the sequential engine at 1/2/4/8 domains over the zoo and 100
# random theories, chaos scheduling inertness, fuel-trap determinism
dune exec test/main.exe -- test parallel

# the hash-consing differential suite, explicitly: unique-table
# properties, the containment fuzzing battery, memo-coherence replay,
# obs reconciliation and the serve eviction no-drift check
dune exec test/main.exe -- test hc

# the incremental-maintenance differential suite, explicitly: zoo +
# random churn batches hom-equivalent (both ways) to a from-scratch
# chase of the updated database, counter reconciliation, bailout
# bit-identity, strategy bit-identity and poisoned-state determinism
dune exec test/main.exe -- test maintain

# the multi-domain lane: the whole tier-1 suite again with every
# defaulted chase strategy forced to Parallel 4 (the env hook behind
# Chase.default_strategy), so each suite doubles as a differential
# oracle against its own sequential run above
BDDFC_TEST_DOMAINS=4 dune runtest --force

# the structural-containment lane: the whole tier-1 suite again with
# the hash-consed store switched off (every defaulted --hc forced to
# structural), so each suite doubles as a differential oracle for the
# interned run above
BDDFC_TEST_HC=structural dune runtest --force

# the CLI cram suite (exit codes, diagnostics, --strategy acceptance)
dune build @test/cli/runtest

# the strategy agreement smoke: exits nonzero if the two chase
# evaluation strategies diverge on any bench workload or zoo entry
dune exec bench/main.exe -- --strategy-smoke

# the join-engine smoke: compiled plans and the reference interpreter
# must agree on every workload and zoo entry, and the compiled engine's
# deterministic probe / index-op counts must stay within 10% of the
# committed EX-17 blob (wall times are informational only)
dune exec bench/main.exe -- --eval-smoke --bench05-check BENCH_05.json

# the serve load harness: forked server children driven through
# cold/warm/overload/faulted phases.  Gated: both children exit 0,
# clean phases have zero errors, the overload burst sheds, warm p50 is
# >=5x better than cold, and the deterministic request/error counts
# (the error-rate of the seeded fault stream) match the committed
# EX-18 blob.  Latencies are reported, never gated.
dune exec bench/main.exe -- --serve-bench --bench06-check BENCH_06.json

# the parallel-chase smoke (EX-19): every workload at 1/2/4/8 domains
# must produce identical rounds/facts/probes/index-op counts and a
# bit-identical instance, matching the committed BENCH_07 blob exactly.
# The >= 2x speedup at 4 domains is gated only on machines with >= 4
# cores; wall times are reported either way.
dune exec bench/main.exe -- --parallel-smoke --bench07-check BENCH_07.json

# the dataflow-analysis smoke (EX-20): every zoo entry's dataflow
# report must build and its JSON must re-parse; sliced and unsliced
# certain-answer verdicts must be identical on every slicing workload;
# the padded workloads must keep their >= 1.5x join-probe reduction;
# and the probe counts must stay within 10% of the committed EX-20
# blob.  Wall times are reported, never gated.
dune exec bench/main.exe -- --analyze-smoke --bench08-check BENCH_08.json

# the hash-consing smoke (EX-21): every workload must produce
# byte-identical verdicts under the interned and structural containment
# backends; the depth-sweep rows must keep their >50% memo hit rate and
# the counters must stay within 10% of the committed EX-21 blob; at
# least one workload must show a >= 1.5x interned speedup (both arms
# run in the same process).  Absolute wall times are never gated.
dune exec bench/main.exe -- --hc-smoke --bench09-check BENCH_09.json

# the incremental-maintenance smoke (EX-22): a churn stream of small
# assert/retract batches, the maintained instance bit-identical to a
# from-scratch re-chase after every batch, per-batch stats reconciling
# with the instance size, and the deterministic counters within 10% of
# the committed EX-22 blob.  The >= 5x maintained-vs-rechase speedup on
# at least one workload is gated only on machines with >= 4 cores (as
# in BENCH_07); wall times are reported either way.
dune exec bench/main.exe -- --maintain-smoke --bench10-check BENCH_10.json

# the observability smoke: tracing must be semantically inert (same
# results, same counter deltas) and the disabled path within noise;
# the registry snapshot is archived as a BENCH_*-style blob
mkdir -p _ci_artifacts
dune exec bench/main.exe -- --obs-smoke --metrics-out _ci_artifacts/BENCH_obs_smoke.json
python3 -m json.tool _ci_artifacts/BENCH_obs_smoke.json > /dev/null

# smoke-test the CLI exit-code contract
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# the analyzer gate: every shipped example and every zoo entry must lint
# clean (class-membership infos are fine; warnings are not)
for f in examples/programs/*.dlg; do
  dune exec bin/bddfc_cli.exe -- lint --deny-warnings "$f" > /dev/null
done
dune exec bin/bddfc_cli.exe -- zoo | awk '{print $1}' | while read -r n; do
  dune exec bin/bddfc_cli.exe -- zoo "$n" --dump > "$tmp/zoo_$n.dlg"
  dune exec bin/bddfc_cli.exe -- lint --deny-warnings "$tmp/zoo_$n.dlg" > /dev/null
done

# the analyze gate: the dataflow report must build over the whole zoo
# in every format, and the JSON must be parse-stable
for f in "$tmp"/zoo_*.dlg; do
  dune exec bin/bddfc_cli.exe -- analyze "$f" > /dev/null
  dune exec bin/bddfc_cli.exe -- analyze --format dot "$f" > /dev/null
  dune exec bin/bddfc_cli.exe -- analyze --format json "$f" \
    | python3 -m json.tool > /dev/null
done

# the Section 5.5 non-FC theory: the chase never settles the query and
# no finite countermodel exists, so only a budget can end the run
cat > "$tmp/diverge.dlg" <<'EOF'
e(X,Y) -> exists Z. e(Y,Z).
r(X,Y), e(X,X2), e(Y,Z), e(Z,Y2) -> r(X2,Y2).
e(a0,a1). r(a0,a0).
? e(X,Y), r(Y,Y).
EOF

# a non-terminating instance under --timeout must come back Unknown (4)
set +e
dune exec bin/bddfc_cli.exe -- model --timeout 2 "$tmp/diverge.dlg" >/dev/null 2>&1
code=$?
set -e
if [ "$code" -ne 4 ]; then
  echo "ci: expected exit 4 (unknown) from budgeted model run, got $code" >&2
  exit 1
fi

# a malformed program must be a one-line input error (2), not a backtrace
echo 'e(X,Y -> broken' > "$tmp/bad.dlg"
set +e
dune exec bin/bddfc_cli.exe -- chase "$tmp/bad.dlg" >/dev/null 2>"$tmp/err"
code=$?
set -e
if [ "$code" -ne 2 ]; then
  echo "ci: expected exit 2 (input error) on malformed input, got $code" >&2
  exit 1
fi
if grep -q "Raised at" "$tmp/err"; then
  echo "ci: backtrace leaked to the user on malformed input" >&2
  exit 1
fi

# the serve contract: a protocol round-trip exits 0, a SIGTERM'd server
# drains, dumps its metrics and still exits 0 (never 143)
printf '{"id":1,"op":"ping"}\n{"id":2,"op":"shutdown"}\n' \
  | dune exec bin/bddfc_cli.exe -- serve > "$tmp/serve.out"
grep -q '"id":1,"ok":true,"op":"ping"' "$tmp/serve.out"
dune exec bin/bddfc_cli.exe -- serve \
  --socket "$tmp/bddfc.sock" --metrics-out "$tmp/serve_metrics.json" &
serve_pid=$!
for _ in $(seq 100); do [ -S "$tmp/bddfc.sock" ] && break; sleep 0.05; done
kill -TERM "$serve_pid"
set +e
wait "$serve_pid"
code=$?
set -e
if [ "$code" -ne 0 ]; then
  echo "ci: expected exit 0 from SIGTERM'd serve, got $code" >&2
  exit 1
fi
python3 -m json.tool "$tmp/serve_metrics.json" > /dev/null

echo "ci: all green"
