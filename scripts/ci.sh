#!/usr/bin/env bash
# Tier-1 gate: full build, full test suite, then the fault-injection
# suite on its own so a budget regression is visible in the CI log even
# when some other suite breaks first.
set -euo pipefail
cd "$(dirname "$0")/.."

# the dev profile (dune's default) carries -warn-error +a via the root
# env stanza, so any compiler warning fails this build
dune build @all
dune runtest

# source hygiene: no tabs, no trailing whitespace in tracked sources
fmt_bad=$(grep -rln -e '	' -e ' $' \
  --include='*.ml' --include='*.mli' --include='dune' \
  lib bin bench test 2>/dev/null || true)
if [ -n "$fmt_bad" ]; then
  echo "ci: tabs or trailing whitespace in:" >&2
  echo "$fmt_bad" >&2
  exit 1
fi

# the budget / fault-injection suite, explicitly
dune exec test/main.exe -- test budget

# the naive vs semi-naive differential oracle, explicitly
dune exec test/main.exe -- test differential

# the CLI cram suite (exit codes, diagnostics, --strategy acceptance)
dune build @test/cli/runtest

# the strategy agreement smoke: exits nonzero if the two chase
# evaluation strategies diverge on any bench workload or zoo entry
dune exec bench/main.exe -- --strategy-smoke

# the join-engine smoke: compiled plans and the reference interpreter
# must agree on every workload and zoo entry, and the compiled engine's
# deterministic probe / index-op counts must stay within 10% of the
# committed EX-17 blob (wall times are informational only)
dune exec bench/main.exe -- --eval-smoke --bench05-check BENCH_05.json

# the observability smoke: tracing must be semantically inert (same
# results, same counter deltas) and the disabled path within noise;
# the registry snapshot is archived as a BENCH_*-style blob
mkdir -p _ci_artifacts
dune exec bench/main.exe -- --obs-smoke --metrics-out _ci_artifacts/BENCH_obs_smoke.json
python3 -m json.tool _ci_artifacts/BENCH_obs_smoke.json > /dev/null

# smoke-test the CLI exit-code contract
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# the analyzer gate: every shipped example and every zoo entry must lint
# clean (class-membership infos are fine; warnings are not)
for f in examples/programs/*.dlg; do
  dune exec bin/bddfc_cli.exe -- lint --deny-warnings "$f" > /dev/null
done
dune exec bin/bddfc_cli.exe -- zoo | awk '{print $1}' | while read -r n; do
  dune exec bin/bddfc_cli.exe -- zoo "$n" --dump > "$tmp/zoo_$n.dlg"
  dune exec bin/bddfc_cli.exe -- lint --deny-warnings "$tmp/zoo_$n.dlg" > /dev/null
done

# the Section 5.5 non-FC theory: the chase never settles the query and
# no finite countermodel exists, so only a budget can end the run
cat > "$tmp/diverge.dlg" <<'EOF'
e(X,Y) -> exists Z. e(Y,Z).
r(X,Y), e(X,X2), e(Y,Z), e(Z,Y2) -> r(X2,Y2).
e(a0,a1). r(a0,a0).
? e(X,Y), r(Y,Y).
EOF

# a non-terminating instance under --timeout must come back Unknown (4)
set +e
dune exec bin/bddfc_cli.exe -- model --timeout 2 "$tmp/diverge.dlg" >/dev/null 2>&1
code=$?
set -e
if [ "$code" -ne 4 ]; then
  echo "ci: expected exit 4 (unknown) from budgeted model run, got $code" >&2
  exit 1
fi

# a malformed program must be a one-line input error (2), not a backtrace
echo 'e(X,Y -> broken' > "$tmp/bad.dlg"
set +e
dune exec bin/bddfc_cli.exe -- chase "$tmp/bad.dlg" >/dev/null 2>"$tmp/err"
code=$?
set -e
if [ "$code" -ne 2 ]; then
  echo "ci: expected exit 2 (input error) on malformed input, got $code" >&2
  exit 1
fi
if grep -q "Raised at" "$tmp/err"; then
  echo "ci: backtrace leaked to the user on malformed input" >&2
  exit 1
fi

echo "ci: all green"
